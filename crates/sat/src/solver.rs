//! A conflict-driven clause-learning (CDCL) SAT solver.
//!
//! The implementation follows the standard MiniSat recipe, with the hot
//! paths tuned for the incremental query streams of BMC and PDR: two
//! watched literals with *blocking literals* and a dedicated inline
//! binary-clause watch scheme, first-UIP conflict analysis with
//! recursive (self-subsuming) clause minimization, non-chronological
//! backjumping, exponential VSIDS variable activity served from an
//! indexed binary max-heap, LBD ("glue") scoring with periodic learned
//! clause database reduction, phase saving and Luby (or geometric)
//! restarts. Every heuristic is a [`SolverConfig`] knob, so engines can
//! ablate them individually; [`SolverConfig::baseline`] reproduces the
//! pre-optimization behaviour for the `exp_solver_opts` experiment.
//!
//! Incrementality is first-class: level-0 assignments (unit consequences)
//! persist across [`Solver::solve_under_assumptions`] calls, so a query
//! stream that does not add clauses between calls — PDR issues thousands
//! of such queries per proof — pays a backtrack to level 0, not a full
//! O(vars) reset plus an O(clauses) unit re-scan.

use ipcl_expr::{Cnf, Lit};
use ipcl_trace::{Heartbeat, MetricSink, Tracer, Value};

/// Minimum spacing of the live-progress `heartbeat` events (the `--watch`
/// feed). Shared by every engine in the workspace so one watch line ticks
/// at a uniform rate.
pub const HEARTBEAT_MS: u64 = 250;

/// Result of [`Solver::solve`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SatResult {
    /// Satisfiable; the vector gives one value per CNF variable.
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
}

impl SatResult {
    /// Whether the result is satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

/// Restart schedule of the CDCL search.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RestartStrategy {
    /// Luby sequence scaled by `unit` conflicts (the default): the
    /// universally near-optimal schedule for unknown runtime
    /// distributions, and measurably better than geometric on the hard
    /// combinatorial instances (pigeonhole) of the E11 experiment.
    Luby {
        /// Conflicts per Luby unit.
        unit: u64,
    },
    /// Geometric schedule: restart after `first` conflicts, growing by
    /// `factor_percent`/100 each time. The pre-optimization default,
    /// kept as an ablation option.
    Geometric {
        /// Conflicts before the first restart.
        first: u64,
        /// Growth factor in percent (150 = ×1.5).
        factor_percent: u64,
    },
}

impl RestartStrategy {
    fn initial(self) -> u64 {
        match self {
            RestartStrategy::Luby { unit } => luby(0) * unit,
            RestartStrategy::Geometric { first, .. } => first,
        }
    }

    fn next(self, restarts_done: u64, current: u64) -> u64 {
        match self {
            RestartStrategy::Luby { unit } => luby(restarts_done) * unit,
            RestartStrategy::Geometric { factor_percent, .. } => (current * factor_percent) / 100,
        }
    }
}

/// The Luby sequence 1, 1, 2, 1, 1, 2, 4, … (0-indexed).
fn luby(x: u64) -> u64 {
    let (mut size, mut seq) = (1u64, 0u32);
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    let mut x = x;
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

/// Heuristic knobs of the CDCL search. All default to the optimized
/// configuration; [`SolverConfig::baseline`] reproduces the
/// pre-optimization solver for ablation experiments.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SolverConfig {
    /// Reuse each variable's last polarity for decisions (on by default).
    /// With it off, decisions always try `false` first.
    pub phase_saving: bool,
    /// Serve decisions from an indexed binary max-heap on VSIDS activity
    /// (on by default). With it off, every decision pays an O(vars) scan.
    pub heap_decisions: bool,
    /// Recursive self-subsuming conflict-clause minimization (on by
    /// default): literals of the learned clause whose reason chains are
    /// dominated by the remaining literals are dropped.
    pub minimize: bool,
    /// Periodically delete the worst half of the learned clauses, keeping
    /// glue (LBD ≤ 2), binary and locked clauses (on by default).
    pub reduce_db: bool,
    /// Learned-clause count that arms the first reduction; the limit
    /// grows ×1.5 after each reduction.
    pub reduce_base: u64,
    /// Restart schedule.
    pub restart: RestartStrategy,
    /// Emulate the pre-optimization per-call overhead: clear *all*
    /// assignments (including level 0) and re-scan every clause for units
    /// on each `solve` call. Off by default; `baseline()` turns it on so
    /// `exp_solver_opts` can quantify the cost on PDR's query stream.
    pub legacy_reset: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            phase_saving: true,
            heap_decisions: true,
            minimize: true,
            reduce_db: true,
            reduce_base: 2000,
            restart: RestartStrategy::Luby { unit: 100 },
            legacy_reset: false,
        }
    }
}

impl SolverConfig {
    /// The pre-optimization solver: linear-scan decisions, no
    /// minimization, no database reduction, geometric restarts, and the
    /// full per-call reset + unit re-scan.
    pub fn baseline() -> Self {
        SolverConfig {
            phase_saving: true,
            heap_decisions: false,
            minimize: false,
            reduce_db: false,
            reduce_base: 2000,
            restart: RestartStrategy::Geometric {
                first: 100,
                factor_percent: 150,
            },
            legacy_reset: true,
        }
    }
}

/// Search statistics accumulated during solving.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of literals implied by unit propagation (non-binary clauses).
    pub propagations: u64,
    /// Number of literals implied by the inline binary-clause scheme.
    pub binary_propagations: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of learned clauses currently stored.
    pub learned_clauses: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learned-clause database reductions performed.
    pub reductions: u64,
    /// Learned clauses deleted by database reductions.
    pub removed_clauses: u64,
    /// Literals removed from learned clauses by minimization.
    pub minimized_literals: u64,
    /// Clauses learned *elsewhere* and injected via
    /// [`Solver::import_clause`] (parallel clause exchange).
    pub imported_clauses: u64,
    /// Locally learned clauses handed out through
    /// [`Solver::take_shared`] for other solvers to import.
    pub exported_clauses: u64,
}

impl SolverStats {
    /// The change since `prev`, an earlier snapshot of the same solver.
    ///
    /// The solver accumulates stats across incremental calls; callers that
    /// want per-call (or per-depth) numbers snapshot [`Solver::stats`]
    /// before the call and diff afterwards. `learned_clauses` tracks the
    /// *currently stored* count and can shrink across a database
    /// reduction, so every field diffs saturating.
    pub fn delta(&self, prev: &SolverStats) -> SolverStats {
        SolverStats {
            decisions: self.decisions.saturating_sub(prev.decisions),
            propagations: self.propagations.saturating_sub(prev.propagations),
            binary_propagations: self
                .binary_propagations
                .saturating_sub(prev.binary_propagations),
            conflicts: self.conflicts.saturating_sub(prev.conflicts),
            learned_clauses: self.learned_clauses.saturating_sub(prev.learned_clauses),
            restarts: self.restarts.saturating_sub(prev.restarts),
            reductions: self.reductions.saturating_sub(prev.reductions),
            removed_clauses: self.removed_clauses.saturating_sub(prev.removed_clauses),
            minimized_literals: self
                .minimized_literals
                .saturating_sub(prev.minimized_literals),
            imported_clauses: self.imported_clauses.saturating_sub(prev.imported_clauses),
            exported_clauses: self.exported_clauses.saturating_sub(prev.exported_clauses),
        }
    }

    /// Emits every field as a `<prefix>.<field>` counter into `sink`.
    pub fn emit(&self, sink: &dyn MetricSink, prefix: &str) {
        sink.counter(&format!("{prefix}.decisions"), self.decisions);
        sink.counter(&format!("{prefix}.propagations"), self.propagations);
        sink.counter(
            &format!("{prefix}.binary_propagations"),
            self.binary_propagations,
        );
        sink.counter(&format!("{prefix}.conflicts"), self.conflicts);
        sink.counter(&format!("{prefix}.restarts"), self.restarts);
        sink.counter(&format!("{prefix}.reductions"), self.reductions);
        sink.counter(&format!("{prefix}.removed_clauses"), self.removed_clauses);
        sink.counter(
            &format!("{prefix}.minimized_literals"),
            self.minimized_literals,
        );
        sink.counter(&format!("{prefix}.imported_clauses"), self.imported_clauses);
        sink.counter(&format!("{prefix}.exported_clauses"), self.exported_clauses);
    }
}

const UNASSIGNED_LEVEL: u32 = u32::MAX;

/// Longest clause the sharing capture will stage for export: long clauses
/// prune little and cost every importer watch-list work.
pub const SHARE_MAX_LEN: usize = 8;

/// Bound on the export staging queue; candidates learned past it are
/// silently dropped until the owner drains with [`Solver::take_shared`].
const SHARE_QUEUE_CAP: usize = 1024;

#[derive(Clone, Debug)]
struct Clause {
    literals: Vec<Lit>,
    learned: bool,
    /// Literal-block distance at learn time (0 for original clauses).
    lbd: u32,
}

/// A watcher entry: the clause index plus a *blocking literal* — some
/// other literal of the clause; when it is already true the clause is
/// satisfied and the watcher is kept without touching clause memory.
#[derive(Clone, Copy, Debug)]
struct Watcher {
    blocker: Lit,
    clause: u32,
}

/// A CDCL SAT solver with incremental clause addition and solving under
/// assumptions.
///
/// Construct with [`Solver::from_cnf`] (or empty with [`Solver::new`]), then
/// call [`Solver::solve`] / [`Solver::solve_under_assumptions`]. The solver
/// is designed for *incremental* use, the pattern of bounded model checking
/// and PDR:
///
/// * [`Solver::add_clause`] may be called between `solve` calls to extend
///   the formula (e.g. with the next unrolled time frame);
/// * learned clauses are retained across calls, so later queries reuse the
///   conflict analysis work of earlier ones;
/// * level-0 assignments persist across calls: a query stream that does not
///   mutate the clause database (PDR's consecution queries) pays only a
///   backtrack to level 0 per call, not a full reset and unit re-scan;
/// * [`Solver::solve_under_assumptions`] decides satisfiability under a set
///   of temporarily-forced literals without polluting the clause database,
///   so per-depth property activations can be retracted for the next depth.
#[derive(Clone, Debug)]
pub struct Solver {
    num_vars: usize,
    clauses: Vec<Clause>,
    /// Number of original (non-learned) clauses.
    original_clauses: usize,
    /// Watch lists for clauses of three or more literals, indexed by the
    /// watched literal's code.
    watches: Vec<Vec<Watcher>>,
    /// Binary-clause watch lists: `bin_watches[l.code()]` holds, for every
    /// binary clause containing `l`, the *other* literal (implied as soon
    /// as `l` is falsified) and the clause index (the reason).
    bin_watches: Vec<Vec<(Lit, u32)>>,
    /// Current partial assignment; indexed by variable.
    values: Vec<Option<bool>>,
    /// Decision level of each assigned variable.
    levels: Vec<u32>,
    /// Reason clause of each propagated variable.
    reasons: Vec<Option<u32>>,
    /// Assignment trail.
    trail: Vec<Lit>,
    /// Index into `trail` marking each decision level.
    trail_lim: Vec<usize>,
    /// Next trail position to propagate.
    propagate_head: usize,
    /// VSIDS activity per variable.
    activity: Vec<f64>,
    activity_inc: f64,
    /// Saved phases for phase-saving heuristic.
    phases: Vec<bool>,
    /// Indexed binary max-heap of unassigned variables, keyed on activity.
    heap: Vec<u32>,
    /// Position of each variable in `heap` (-1 when absent).
    heap_pos: Vec<i32>,
    /// Reusable conflict-analysis marker, cleared via `to_clear`.
    seen: Vec<bool>,
    /// Variables marked `seen` by the current analysis.
    to_clear: Vec<u32>,
    /// Reusable DFS stack of the minimization check.
    min_stack: Vec<Lit>,
    /// Level stamps for O(len) LBD computation.
    lbd_stamp: Vec<u64>,
    lbd_counter: u64,
    /// Learned clauses currently stored (drives database reduction).
    learned_count: u64,
    /// Learned-clause count arming the next reduction.
    reduce_limit: u64,
    /// The formula is unsatisfiable independent of assumptions.
    unsat: bool,
    /// Maximum LBD of locally learned clauses copied into `share_queue`
    /// for export (0 — the default — disables capture entirely).
    share_max_lbd: u32,
    /// Export staging: freshly learned clauses passing the LBD/length
    /// filter, drained by [`Solver::take_shared`]. Bounded; overflow drops
    /// the candidate (sharing is best-effort, never required for
    /// soundness).
    share_queue: Vec<(Vec<Lit>, u32)>,
    config: SolverConfig,
    stats: SolverStats,
    /// Observability handle; [`Tracer::disabled`] (the default) costs one
    /// branch per recording site.
    tracer: Tracer,
    /// Rate limiter of the live-progress `heartbeat` events (checked at
    /// restarts only, so the search loop never reads the clock).
    heartbeat: Heartbeat,
    /// Stats at the last heartbeat, for since-last-beat deltas.
    beat_base: SolverStats,
}

impl Solver {
    /// Builds an empty solver over `num_vars` variables (use
    /// [`Solver::add_clause`] to populate it incrementally).
    pub fn new(num_vars: usize) -> Self {
        Solver::with_config(num_vars, SolverConfig::default())
    }

    /// Builds an empty solver with an explicit heuristic configuration.
    pub fn with_config(num_vars: usize, config: SolverConfig) -> Self {
        let mut solver = Solver {
            num_vars: 0,
            clauses: Vec::new(),
            original_clauses: 0,
            watches: Vec::new(),
            bin_watches: Vec::new(),
            values: Vec::new(),
            levels: Vec::new(),
            reasons: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            propagate_head: 0,
            activity: Vec::new(),
            activity_inc: 1.0,
            phases: Vec::new(),
            heap: Vec::new(),
            heap_pos: Vec::new(),
            seen: Vec::new(),
            to_clear: Vec::new(),
            min_stack: Vec::new(),
            lbd_stamp: Vec::new(),
            lbd_counter: 0,
            learned_count: 0,
            reduce_limit: config.reduce_base.max(1),
            unsat: false,
            share_max_lbd: 0,
            share_queue: Vec::new(),
            config,
            stats: SolverStats::default(),
            tracer: Tracer::disabled(),
            heartbeat: Heartbeat::every_ms(HEARTBEAT_MS),
            beat_base: SolverStats::default(),
        };
        solver.reserve_vars(num_vars);
        solver
    }

    /// Builds a solver for `cnf`.
    pub fn from_cnf(cnf: &Cnf) -> Self {
        Self::from_cnf_with_config(cnf, SolverConfig::default())
    }

    /// Builds a solver for `cnf` with an explicit configuration.
    pub fn from_cnf_with_config(cnf: &Cnf, config: SolverConfig) -> Self {
        let mut solver = Solver::with_config(cnf.num_vars as usize, config);
        for clause in &cnf.clauses {
            solver.add_clause(clause.iter().copied());
        }
        solver
    }

    /// Search statistics of the most recent [`Solver::solve`] call(s).
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// The number of variables the solver knows about.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The number of stored clauses (original plus learned).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The active heuristic configuration.
    pub fn config(&self) -> SolverConfig {
        self.config
    }

    /// Installs an observability handle. Each [`Solver::solve`] call then
    /// runs under a profile-only `sat.solve` span and logs
    /// `solver_restart` / `learned_reduction` events. The default
    /// [`Tracer::disabled`] costs one branch per site.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Replaces the heuristic configuration (callable between `solve`s).
    /// The learned-clause reduction limit re-arms from the new
    /// `reduce_base`, so switching to a smaller base takes effect at the
    /// next restart (growth from earlier reductions is discarded).
    pub fn set_config(&mut self, config: SolverConfig) {
        self.config = config;
        self.reduce_limit = config.reduce_base.max(1);
        self.rebuild_heap();
    }

    /// Enables or disables phase saving (on by default).
    ///
    /// With phase saving on, a decision variable is assigned the polarity it
    /// last held, so after a restart or backjump the search re-enters the
    /// part of the space it was exploring — the standard MiniSat heuristic,
    /// and a measurable win on the incremental workloads of BMC and PDR
    /// where consecutive queries differ only in their assumptions (see
    /// `exp_pdr_vs_kinduction` in EXPERIMENTS.md for the ablation). With it
    /// off, decisions always try `false` first.
    pub fn set_phase_saving(&mut self, enabled: bool) {
        self.config.phase_saving = enabled;
    }

    /// Whether phase saving is enabled.
    pub fn phase_saving(&self) -> bool {
        self.config.phase_saving
    }

    /// Grows the variable universe to at least `num_vars` variables.
    ///
    /// New variables are unconstrained until clauses mention them. Existing
    /// clauses, learned clauses and saved phases are preserved, which is what
    /// makes the solver usable incrementally: a bounded-model-checking loop
    /// adds the variables and clauses of one more time frame, then re-solves.
    pub fn reserve_vars(&mut self, num_vars: usize) {
        if num_vars <= self.num_vars {
            return;
        }
        let old = self.num_vars;
        self.num_vars = num_vars;
        self.watches.resize(2 * num_vars, Vec::new());
        self.bin_watches.resize(2 * num_vars, Vec::new());
        self.values.resize(num_vars, None);
        self.levels.resize(num_vars, UNASSIGNED_LEVEL);
        self.reasons.resize(num_vars, None);
        self.activity.resize(num_vars, 0.0);
        self.phases.resize(num_vars, false);
        self.seen.resize(num_vars, false);
        self.heap_pos.resize(num_vars, -1);
        for var in old..num_vars {
            self.heap_insert(var as u32);
        }
    }

    /// Adds a clause to the database. May be called between `solve` calls;
    /// variables beyond the current universe grow it automatically.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, literals: I) {
        let literals: Vec<Lit> = literals.into_iter().collect();
        if let Some(max_var) = literals.iter().map(|l| l.var()).max() {
            self.reserve_vars(max_var as usize + 1);
        }
        // Mutating the database invalidates any in-flight search state above
        // level 0; level-0 consequences stay valid (clauses are only added).
        self.backtrack_to(0);
        if self.insert_clause(literals, 0) {
            self.original_clauses += 1;
        }
    }

    /// Injects a clause learned *elsewhere* — by another solver working on
    /// the same (or a weaker) formula, typically a parallel-PDR sibling
    /// worker. The clause is stored permanently with the given literal-block
    /// distance: unlike locally learned clauses it is **not** eligible for
    /// database reduction, because a foreign lemma cannot be re-derived by
    /// this solver's own conflict analysis, and parallel engines rely on an
    /// imported frame lemma staying in force for determinism.
    ///
    /// The caller is responsible for soundness: the clause must be implied
    /// by (a sound extension of) this solver's formula. Returns whether the
    /// clause was kept (tautologies and clauses satisfied at level 0
    /// simplify away exactly like [`Solver::add_clause`]).
    pub fn import_clause<I: IntoIterator<Item = Lit>>(&mut self, literals: I, lbd: u32) -> bool {
        let literals: Vec<Lit> = literals.into_iter().collect();
        if let Some(max_var) = literals.iter().map(|l| l.var()).max() {
            self.reserve_vars(max_var as usize + 1);
        }
        self.backtrack_to(0);
        let kept = self.insert_clause(literals, lbd);
        if kept {
            // Imports count as "original" for the reduction bookkeeping
            // (they are never removed), but separately in the stats.
            self.original_clauses += 1;
            self.stats.imported_clauses += 1;
        }
        kept
    }

    /// Arms the clause-sharing capture: locally learned clauses with
    /// `LBD ≤ max_lbd` (and at most [`SHARE_MAX_LEN`] literals) are copied
    /// into an internal bounded queue as they are learned, to be drained by
    /// [`Solver::take_shared`] and offered to sibling solvers. `0` (the
    /// default) disables capture — the search loop then never touches the
    /// queue.
    pub fn set_clause_sharing(&mut self, max_lbd: u32) {
        self.share_max_lbd = max_lbd;
    }

    /// Drains the captured share candidates: `(literals, lbd)` pairs of
    /// locally learned clauses that passed the [`Solver::set_clause_sharing`]
    /// filter since the last drain. The clauses are implied by the clause
    /// database as it stood when they were learned, so they are sound to
    /// [`Solver::import_clause`] into any solver whose database is a
    /// superset of this one's *at the time of learning* — parallel-PDR
    /// callers additionally filter by variable range to stay within the
    /// encoding region all workers share.
    pub fn take_shared(&mut self) -> Vec<(Vec<Lit>, u32)> {
        self.stats.exported_clauses += self.share_queue.len() as u64;
        std::mem::take(&mut self.share_queue)
    }

    /// Stores a (deduplicated, non-tautological, level-0-simplified)
    /// clause; returns whether it was kept. Units are enqueued at level 0
    /// immediately, which is what lets `solve` skip the per-call unit
    /// re-scan of the whole database. `lbd` is recorded on the stored
    /// clause (0 for original clauses, the foreign LBD for imports).
    fn insert_clause(&mut self, mut literals: Vec<Lit>, lbd: u32) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        literals.sort_unstable();
        literals.dedup();
        // A clause containing x and !x is a tautology: drop it.
        if literals
            .windows(2)
            .any(|w| w[0].var() == w[1].var() && w[0] != w[1])
        {
            return false;
        }
        // Drop literals already false at level 0 (their assignments are
        // permanent consequences of earlier clauses, so this is sound).
        literals.retain(|&l| !(self.value_of(l) == Some(false) && self.level_of(l) == 0));
        match literals.len() {
            0 => {
                self.unsat = true;
                false
            }
            1 => {
                let unit = literals[0];
                let index = self.clauses.len() as u32;
                self.clauses.push(Clause {
                    literals,
                    learned: false,
                    lbd,
                });
                if !self.enqueue(unit, Some(index)) {
                    self.unsat = true;
                }
                true
            }
            _ => {
                let index = self.clauses.len() as u32;
                self.clauses.push(Clause {
                    literals,
                    learned: false,
                    lbd,
                });
                self.attach_clause(index);
                true
            }
        }
    }

    /// Registers the watches of clause `index` (two or more literals).
    fn attach_clause(&mut self, index: u32) {
        let clause = &self.clauses[index as usize];
        if clause.literals.len() == 2 {
            let (a, b) = (clause.literals[0], clause.literals[1]);
            self.bin_watches[a.code()].push((b, index));
            self.bin_watches[b.code()].push((a, index));
        } else {
            let (w0, w1) = (clause.literals[0], clause.literals[1]);
            self.watches[w0.code()].push(Watcher {
                blocker: w1,
                clause: index,
            });
            self.watches[w1.code()].push(Watcher {
                blocker: w0,
                clause: index,
            });
        }
    }

    fn value_of(&self, lit: Lit) -> Option<bool> {
        self.values[lit.var() as usize].map(|v| v == lit.is_positive())
    }

    fn level_of(&self, lit: Lit) -> u32 {
        self.levels[lit.var() as usize]
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, lit: Lit, reason: Option<u32>) -> bool {
        match self.value_of(lit) {
            Some(true) => true,
            Some(false) => false,
            None => {
                let var = lit.var() as usize;
                self.values[var] = Some(lit.is_positive());
                self.levels[var] = self.decision_level();
                self.reasons[var] = reason;
                self.phases[var] = lit.is_positive();
                self.trail.push(lit);
                true
            }
        }
    }

    // ---- indexed binary max-heap on VSIDS activity -----------------------

    fn heap_less(&self, a: u32, b: u32) -> bool {
        self.activity[a as usize] < self.activity[b as usize]
    }

    fn heap_swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.heap_pos[self.heap[i] as usize] = i as i32;
        self.heap_pos[self.heap[j] as usize] = j as i32;
    }

    fn heap_sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap_less(self.heap[parent], self.heap[i]) {
                self.heap_swap(parent, i);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn heap_sift_down(&mut self, mut i: usize) {
        loop {
            let (left, right) = (2 * i + 1, 2 * i + 2);
            let mut largest = i;
            if left < self.heap.len() && self.heap_less(self.heap[largest], self.heap[left]) {
                largest = left;
            }
            if right < self.heap.len() && self.heap_less(self.heap[largest], self.heap[right]) {
                largest = right;
            }
            if largest == i {
                break;
            }
            self.heap_swap(i, largest);
            i = largest;
        }
    }

    fn heap_insert(&mut self, var: u32) {
        if self.heap_pos[var as usize] >= 0 {
            return;
        }
        self.heap_pos[var as usize] = self.heap.len() as i32;
        self.heap.push(var);
        self.heap_sift_up(self.heap.len() - 1);
    }

    fn heap_pop(&mut self) -> Option<u32> {
        let top = *self.heap.first()?;
        self.heap_pos[top as usize] = -1;
        let last = self.heap.pop().expect("heap is non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.heap_pos[last as usize] = 0;
            self.heap_sift_down(0);
        }
        Some(top)
    }

    fn rebuild_heap(&mut self) {
        for p in &mut self.heap_pos {
            *p = -1;
        }
        self.heap.clear();
        for var in 0..self.num_vars {
            if self.values[var].is_none() {
                self.heap_pos[var] = self.heap.len() as i32;
                self.heap.push(var as u32);
            }
        }
        if self.heap.len() > 1 {
            for i in (0..self.heap.len() / 2).rev() {
                self.heap_sift_down(i);
            }
        }
    }

    // ---- propagation -----------------------------------------------------

    /// Unit propagation; returns the index of a conflicting clause, if any.
    ///
    /// Binary clauses propagate inline from their dedicated watch lists
    /// (one cache line, no clause-memory touch); longer clauses use the
    /// blocking-literal watcher scheme with the watched pair kept in the
    /// clause's first two positions. The watcher list is compacted in
    /// place — no per-propagation allocation.
    fn propagate(&mut self) -> Option<u32> {
        while self.propagate_head < self.trail.len() {
            let lit = self.trail[self.propagate_head];
            self.propagate_head += 1;
            let falsified = lit.negated();

            // Binary clauses: the other literal is implied immediately.
            for i in 0..self.bin_watches[falsified.code()].len() {
                let (other, index) = self.bin_watches[falsified.code()][i];
                match self.value_of(other) {
                    Some(true) => {}
                    Some(false) => return Some(index),
                    None => {
                        self.stats.binary_propagations += 1;
                        self.enqueue(other, Some(index));
                    }
                }
            }

            let mut ws = std::mem::take(&mut self.watches[falsified.code()]);
            let mut conflict = None;
            let mut i = 0;
            let mut j = 0;
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                // Blocking literal: clause already satisfied, keep watcher.
                if self.value_of(w.blocker) == Some(true) {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                let ci = w.clause as usize;
                // Make sure the falsified literal is in position 1.
                {
                    let lits = &mut self.clauses[ci].literals;
                    if lits[0] == falsified {
                        lits.swap(0, 1);
                    }
                    debug_assert_eq!(lits[1], falsified);
                }
                let first = self.clauses[ci].literals[0];
                let w = Watcher {
                    blocker: first,
                    clause: w.clause,
                };
                if self.value_of(first) == Some(true) {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.clauses[ci].literals.len();
                for k in 2..len {
                    let candidate = self.clauses[ci].literals[k];
                    if self.value_of(candidate) != Some(false) {
                        self.clauses[ci].literals.swap(1, k);
                        self.watches[candidate.code()].push(w);
                        continue 'watchers;
                    }
                }
                // No new watch: the clause is unit (propagate `first`) or
                // conflicting.
                ws[j] = w;
                j += 1;
                if self.value_of(first) == Some(false) {
                    conflict = Some(w.clause);
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                    break;
                }
                self.stats.propagations += 1;
                self.enqueue(first, Some(w.clause));
            }
            ws.truncate(j);
            self.watches[falsified.code()] = ws;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    // ---- conflict analysis ----------------------------------------------

    fn bump_activity(&mut self, var: usize) {
        self.activity[var] += self.activity_inc;
        if self.activity[var] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.activity_inc *= 1e-100;
        }
        let pos = self.heap_pos[var];
        if pos >= 0 {
            self.heap_sift_up(pos as usize);
        }
    }

    fn decay_activity(&mut self) {
        self.activity_inc /= 0.95;
    }

    fn mark_seen(&mut self, var: u32) {
        if !self.seen[var as usize] {
            self.seen[var as usize] = true;
            self.to_clear.push(var);
        }
    }

    /// First-UIP conflict analysis with (optional) recursive minimization.
    /// Returns the learned clause (asserting literal first, a
    /// backjump-level literal second), the level to backjump to and the
    /// clause's LBD.
    fn analyze(&mut self, conflict: u32) -> (Vec<Lit>, u32, u32) {
        let current_level = self.decision_level();
        let mut learned: Vec<Lit> = Vec::new();
        debug_assert!(self.to_clear.is_empty());
        let mut counter = 0usize;
        let mut resolve_var: Option<u32> = None;
        let mut clause_index = conflict as usize;
        let mut trail_pos = self.trail.len();

        loop {
            for k in 0..self.clauses[clause_index].literals.len() {
                let lit = self.clauses[clause_index].literals[k];
                let var = lit.var();
                if Some(var) == resolve_var {
                    continue;
                }
                if self.seen[var as usize] || self.levels[var as usize] == 0 {
                    continue;
                }
                self.mark_seen(var);
                self.bump_activity(var as usize);
                if self.levels[var as usize] == current_level {
                    counter += 1;
                } else {
                    learned.push(lit);
                }
            }
            // Walk the trail backwards to the most recently assigned literal
            // still marked `seen`; that is the next resolution pivot.
            let pivot = loop {
                trail_pos -= 1;
                let lit = self.trail[trail_pos];
                if self.seen[lit.var() as usize] {
                    self.seen[lit.var() as usize] = false;
                    counter -= 1;
                    break lit;
                }
            };
            if counter == 0 {
                // `pivot` is the first unique implication point.
                learned.insert(0, pivot.negated());
                break;
            }
            resolve_var = Some(pivot.var());
            clause_index = self.reasons[pivot.var() as usize]
                .expect("propagated literal has a reason clause")
                as usize;
        }

        if self.config.minimize && learned.len() > 1 {
            let before = learned.len();
            let mut keep = 1;
            for i in 1..learned.len() {
                let lit = learned[i];
                if !self.lit_redundant(lit) {
                    learned[keep] = lit;
                    keep += 1;
                }
            }
            learned.truncate(keep);
            self.stats.minimized_literals += (before - keep) as u64;
        }

        // Place a maximal-level literal second so it is a valid watch after
        // the backjump (it is exactly the literal that becomes unassigned
        // last).
        let mut backjump = 0;
        if learned.len() > 1 {
            let mut max_index = 1;
            for i in 2..learned.len() {
                if self.levels[learned[i].var() as usize]
                    > self.levels[learned[max_index].var() as usize]
                {
                    max_index = i;
                }
            }
            learned.swap(1, max_index);
            backjump = self.levels[learned[1].var() as usize];
        }

        let lbd = self.compute_lbd(&learned);
        for i in 0..self.to_clear.len() {
            let var = self.to_clear[i];
            self.seen[var as usize] = false;
        }
        self.to_clear.clear();
        (learned, backjump, lbd)
    }

    /// Whether `lit` of the learned clause is redundant: every path through
    /// its reason chain terminates in level-0 assignments or in literals
    /// already marked `seen` (i.e. already in the clause or proven
    /// redundant) — the recursive self-subsumption check of MiniSat,
    /// iterative over the reusable DFS stack.
    fn lit_redundant(&mut self, lit: Lit) -> bool {
        if self.reasons[lit.var() as usize].is_none() {
            return false;
        }
        self.min_stack.clear();
        self.min_stack.push(lit);
        let undo_from = self.to_clear.len();
        while let Some(l) = self.min_stack.pop() {
            let ci =
                self.reasons[l.var() as usize].expect("stacked literals have reasons") as usize;
            for k in 0..self.clauses[ci].literals.len() {
                let p = self.clauses[ci].literals[k];
                let var = p.var();
                if var == l.var() || self.levels[var as usize] == 0 || self.seen[var as usize] {
                    continue;
                }
                if self.reasons[var as usize].is_none() {
                    // Reached a decision outside the clause: not redundant.
                    // Undo only the marks added by this check.
                    for i in undo_from..self.to_clear.len() {
                        let v = self.to_clear[i];
                        self.seen[v as usize] = false;
                    }
                    self.to_clear.truncate(undo_from);
                    return false;
                }
                self.mark_seen(var);
                self.min_stack.push(p);
            }
        }
        true
    }

    /// Literal-block distance: number of distinct decision levels among the
    /// clause's literals.
    fn compute_lbd(&mut self, literals: &[Lit]) -> u32 {
        self.lbd_counter += 1;
        let mut lbd = 0;
        for &lit in literals {
            let level = self.levels[lit.var() as usize] as usize;
            if level >= self.lbd_stamp.len() {
                self.lbd_stamp.resize(level + 1, 0);
            }
            if self.lbd_stamp[level] != self.lbd_counter {
                self.lbd_stamp[level] = self.lbd_counter;
                lbd += 1;
            }
        }
        lbd
    }

    // ---- learned-clause database reduction ------------------------------

    /// Deletes the worst half of the deletable learned clauses (by LBD,
    /// then length), keeping binary, glue (LBD ≤ 2) and locked (currently
    /// a reason) clauses. Must run at decision level 0; watch lists are
    /// rebuilt and reasons remapped.
    fn reduce_db(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        let mut locked = vec![false; self.clauses.len()];
        for &lit in &self.trail {
            if let Some(reason) = self.reasons[lit.var() as usize] {
                locked[reason as usize] = true;
            }
        }
        let mut candidates: Vec<u32> = (0..self.clauses.len() as u32)
            .filter(|&i| {
                let c = &self.clauses[i as usize];
                c.learned && c.literals.len() > 2 && c.lbd > 2 && !locked[i as usize]
            })
            .collect();
        candidates.sort_by_key(|&i| {
            let c = &self.clauses[i as usize];
            std::cmp::Reverse((c.lbd, c.literals.len() as u32))
        });
        let remove_count = candidates.len() / 2;
        if remove_count == 0 {
            return;
        }
        let mut removed = vec![false; self.clauses.len()];
        for &i in &candidates[..remove_count] {
            removed[i as usize] = true;
        }

        // Compact the database and remap indices.
        let mut remap = vec![u32::MAX; self.clauses.len()];
        let mut kept = Vec::with_capacity(self.clauses.len() - remove_count);
        for (old, clause) in std::mem::take(&mut self.clauses).into_iter().enumerate() {
            if !removed[old] {
                remap[old] = kept.len() as u32;
                kept.push(clause);
            }
        }
        self.clauses = kept;
        for &lit in &self.trail {
            let var = lit.var() as usize;
            if let Some(reason) = self.reasons[var] {
                self.reasons[var] = Some(remap[reason as usize]);
            }
        }
        // Rebuild the watch lists. At a fully propagated level 0 every
        // clause is either satisfied at level 0 or has at least two
        // non-false literals; move two non-false literals (or a satisfying
        // true literal) to the front so the watcher invariant holds.
        for list in &mut self.watches {
            list.clear();
        }
        for list in &mut self.bin_watches {
            list.clear();
        }
        for index in 0..self.clauses.len() {
            if self.clauses[index].literals.len() < 2 {
                continue;
            }
            {
                let values = &self.values;
                let lits = &mut self.clauses[index].literals;
                let is_false =
                    |l: Lit| values[l.var() as usize].map(|v| v == l.is_positive()) == Some(false);
                let mut front = 0;
                for k in 0..lits.len() {
                    if !is_false(lits[k]) {
                        lits.swap(front, k);
                        front += 1;
                        if front == 2 {
                            break;
                        }
                    }
                }
            }
            self.attach_clause(index as u32);
        }
        self.stats.reductions += 1;
        self.stats.removed_clauses += remove_count as u64;
        self.learned_count -= remove_count as u64;
        self.stats.learned_clauses -= remove_count as u64;
        self.tracer.event(
            "learned_reduction",
            &[
                ("removed", Value::U64(remove_count as u64)),
                ("remaining", Value::U64(self.learned_count)),
            ],
        );
    }

    // ---- search ----------------------------------------------------------

    fn backtrack_to(&mut self, level: u32) {
        while let Some(&lit) = self.trail.last() {
            let var = lit.var() as usize;
            if self.levels[var] <= level {
                break;
            }
            self.values[var] = None;
            self.levels[var] = UNASSIGNED_LEVEL;
            self.reasons[var] = None;
            if self.config.heap_decisions {
                self.heap_insert(var as u32);
            }
            self.trail.pop();
        }
        self.trail_lim.truncate(level as usize);
        self.propagate_head = self.propagate_head.min(self.trail.len());
    }

    fn pick_branch_variable(&mut self) -> Option<usize> {
        if self.config.heap_decisions {
            while let Some(var) = self.heap_pop() {
                if self.values[var as usize].is_none() {
                    return Some(var as usize);
                }
            }
            return None;
        }
        (0..self.num_vars)
            .filter(|&v| self.values[v].is_none())
            .max_by(|&a, &b| {
                self.activity[a]
                    .partial_cmp(&self.activity[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    /// The pre-optimization per-call reset: clear *every* assignment
    /// (including level 0) and re-derive the units by scanning the whole
    /// clause database. Kept behind [`SolverConfig::legacy_reset`] so the
    /// E11 experiment can measure what the persistent-level-0 scheme
    /// saves; returns `false` on an immediate unit conflict.
    fn legacy_reset_search(&mut self) -> bool {
        self.trail_lim.clear();
        for var in 0..self.num_vars {
            self.values[var] = None;
            self.levels[var] = UNASSIGNED_LEVEL;
            self.reasons[var] = None;
        }
        self.trail.clear();
        self.propagate_head = 0;
        if self.config.heap_decisions {
            self.rebuild_heap();
        }
        for index in 0..self.clauses.len() {
            if self.clauses[index].literals.len() == 1 {
                let unit = self.clauses[index].literals[0];
                if !self.enqueue(unit, Some(index as u32)) {
                    return false;
                }
            }
        }
        true
    }

    /// Decides satisfiability of the formula.
    ///
    /// Returns [`SatResult::Sat`] with a model assigning every CNF variable,
    /// or [`SatResult::Unsat`].
    pub fn solve(&mut self) -> SatResult {
        self.solve_under_assumptions(&[])
    }

    /// Decides satisfiability under temporarily-forced `assumptions`.
    ///
    /// Assumptions are enqueued as pseudo-decisions below every search
    /// decision (the MiniSat discipline), so learned clauses never depend on
    /// them and remain valid for later calls with different assumptions —
    /// the key property for incremental bounded model checking, where each
    /// depth activates a different property literal.
    ///
    /// Between calls the solver keeps its level-0 trail (the accumulated
    /// unit consequences): when no clauses were added since the previous
    /// call, re-solving starts with a backtrack to level 0 instead of a
    /// full reset and an O(clauses) unit re-scan.
    ///
    /// Returns [`SatResult::Unsat`] if the formula is unsatisfiable *under
    /// the assumptions* (the formula itself may still be satisfiable).
    pub fn solve_under_assumptions(&mut self, assumptions: &[Lit]) -> SatResult {
        if !self.tracer.is_enabled() {
            return self.search(assumptions);
        }
        // Profile-only span: PDR issues thousands of sub-millisecond
        // queries per proof, so per-call events would swamp the log.
        // Engines emit the accumulated stats as `sat.*` counters once per
        // run via [`SolverStats::emit`].
        let tracer = self.tracer.clone();
        let _span = tracer.span_fast("sat.solve");
        self.emit_heartbeat();
        self.search(assumptions)
    }

    /// Emits a live-progress `heartbeat` event (rate-limited; see
    /// [`Heartbeat`]) carrying the conflict/restart/propagation work done
    /// since the last beat, plus running totals. Checked at restarts and
    /// at traced `solve` entries only, so the inner search loop never
    /// reads the clock.
    fn emit_heartbeat(&mut self) {
        if !self.heartbeat.due(&self.tracer) {
            return;
        }
        let delta = self.stats.delta(&self.beat_base);
        self.tracer.event(
            "heartbeat",
            &[
                ("engine", Value::from("sat")),
                ("conflicts", Value::U64(delta.conflicts)),
                ("restarts", Value::U64(delta.restarts)),
                (
                    "propagations",
                    Value::U64(delta.propagations + delta.binary_propagations),
                ),
                ("total_conflicts", Value::U64(self.stats.conflicts)),
                ("total_restarts", Value::U64(self.stats.restarts)),
            ],
        );
        self.beat_base = self.stats;
    }

    fn search(&mut self, assumptions: &[Lit]) -> SatResult {
        if self.unsat {
            return SatResult::Unsat;
        }
        if let Some(max_var) = assumptions.iter().map(|l| l.var()).max() {
            self.reserve_vars(max_var as usize + 1);
        }
        if self.config.legacy_reset {
            if !self.legacy_reset_search() {
                self.unsat = true;
                return SatResult::Unsat;
            }
        } else {
            self.backtrack_to(0);
        }

        let mut restarts_done = 0u64;
        let mut conflicts_until_restart = self.config.restart.initial().max(1);
        let mut conflicts_since_restart = 0u64;

        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    // A level-0 conflict is assumption-free (assumptions
                    // live at pseudo-decision levels ≥ 1): the formula
                    // itself is unsatisfiable, permanently.
                    self.unsat = true;
                    return SatResult::Unsat;
                }
                let (learned, backjump_level, lbd) = self.analyze(conflict);
                self.backtrack_to(backjump_level);
                let asserting = learned[0];
                if learned.len() == 1 {
                    if !self.enqueue(asserting, None) {
                        self.unsat = true;
                        return SatResult::Unsat;
                    }
                } else {
                    if self.share_max_lbd > 0
                        && lbd <= self.share_max_lbd
                        && learned.len() <= SHARE_MAX_LEN
                        && self.share_queue.len() < SHARE_QUEUE_CAP
                    {
                        self.share_queue.push((learned.clone(), lbd));
                    }
                    let index = self.clauses.len() as u32;
                    self.clauses.push(Clause {
                        literals: learned,
                        learned: true,
                        lbd,
                    });
                    self.attach_clause(index);
                    self.learned_count += 1;
                    self.stats.learned_clauses += 1;
                    let enqueued = self.enqueue(asserting, Some(index));
                    debug_assert!(enqueued, "asserting literal is unassigned after backjump");
                }
                self.decay_activity();
                if conflicts_since_restart >= conflicts_until_restart {
                    self.stats.restarts += 1;
                    restarts_done += 1;
                    self.tracer.event(
                        "solver_restart",
                        &[
                            ("restart", Value::U64(restarts_done)),
                            ("conflicts", Value::U64(self.stats.conflicts)),
                            ("interval", Value::U64(conflicts_until_restart)),
                        ],
                    );
                    self.emit_heartbeat();
                    conflicts_since_restart = 0;
                    conflicts_until_restart = self
                        .config
                        .restart
                        .next(restarts_done, conflicts_until_restart)
                        .max(1);
                    self.backtrack_to(0);
                    if self.config.reduce_db && self.learned_count >= self.reduce_limit {
                        self.reduce_db();
                        self.reduce_limit += self.reduce_limit / 2;
                    }
                }
            } else if (self.decision_level() as usize) < assumptions.len() {
                // Establish the next assumption as a pseudo-decision.
                let assumption = assumptions[self.decision_level() as usize];
                match self.value_of(assumption) {
                    Some(true) => {
                        // Already implied: open an empty level so assumption
                        // indices keep lining up with decision levels.
                        self.trail_lim.push(self.trail.len());
                    }
                    Some(false) => {
                        // The formula forces the complement: unsatisfiable
                        // under the assumptions.
                        return SatResult::Unsat;
                    }
                    None => {
                        self.trail_lim.push(self.trail.len());
                        let enqueued = self.enqueue(assumption, None);
                        debug_assert!(enqueued, "assumption variable was unassigned");
                    }
                }
            } else {
                match self.pick_branch_variable() {
                    None => {
                        let model = (0..self.num_vars)
                            .map(|v| self.values[v].unwrap_or(false))
                            .collect();
                        return SatResult::Sat(model);
                    }
                    Some(var) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let phase = self.config.phase_saving && self.phases[var];
                        let lit = Lit::new(var as u32, phase);
                        let enqueued = self.enqueue(lit, None);
                        debug_assert!(enqueued, "decision variable was unassigned");
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcl_expr::{Cnf, Lit};

    fn lit(v: u32, positive: bool) -> Lit {
        Lit::new(v, positive)
    }

    /// The named configuration points of the feature matrix: every new
    /// heuristic individually off against the optimized default, plus the
    /// full pre-optimization baseline.
    fn config_matrix() -> Vec<(&'static str, SolverConfig)> {
        let default = SolverConfig::default();
        vec![
            ("default", default),
            (
                "no-heap",
                SolverConfig {
                    heap_decisions: false,
                    ..default
                },
            ),
            (
                "no-minimize",
                SolverConfig {
                    minimize: false,
                    ..default
                },
            ),
            (
                "reduce-every-clause",
                SolverConfig {
                    reduce_base: 1,
                    ..default
                },
            ),
            (
                "no-reduce",
                SolverConfig {
                    reduce_db: false,
                    ..default
                },
            ),
            (
                "geometric",
                SolverConfig {
                    restart: RestartStrategy::Geometric {
                        first: 2,
                        factor_percent: 150,
                    },
                    ..default
                },
            ),
            (
                "tiny-luby",
                SolverConfig {
                    restart: RestartStrategy::Luby { unit: 1 },
                    ..default
                },
            ),
            ("baseline", SolverConfig::baseline()),
        ]
    }

    #[test]
    fn empty_formula_is_sat() {
        let cnf = Cnf::new(3);
        let mut solver = Solver::from_cnf(&cnf);
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause([]);
        let mut solver = Solver::from_cnf(&cnf);
        assert_eq!(solver.solve(), SatResult::Unsat);
    }

    #[test]
    fn unit_clauses() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause([lit(0, true)]);
        cnf.add_clause([lit(1, false)]);
        let mut solver = Solver::from_cnf(&cnf);
        match solver.solve() {
            SatResult::Sat(model) => {
                assert!(model[0]);
                assert!(!model[1]);
            }
            SatResult::Unsat => panic!("expected sat"),
        }
    }

    #[test]
    fn contradictory_units_unsat() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause([lit(0, true)]);
        cnf.add_clause([lit(0, false)]);
        let mut solver = Solver::from_cnf(&cnf);
        assert_eq!(solver.solve(), SatResult::Unsat);
    }

    #[test]
    fn tautological_clause_is_dropped() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause([lit(0, true), lit(0, false)]);
        let mut solver = Solver::from_cnf(&cnf);
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn simple_implication_chain() {
        // (x0) & (!x0 | x1) & (!x1 | x2) forces all true.
        let mut cnf = Cnf::new(3);
        cnf.add_clause([lit(0, true)]);
        cnf.add_clause([lit(0, false), lit(1, true)]);
        cnf.add_clause([lit(1, false), lit(2, true)]);
        let mut solver = Solver::from_cnf(&cnf);
        match solver.solve() {
            SatResult::Sat(model) => assert_eq!(model, vec![true, true, true]),
            SatResult::Unsat => panic!("expected sat"),
        }
    }

    #[test]
    fn binary_clauses_propagate_inline() {
        // The binary clauses precede the unit, so the chain is derived by
        // propagation through the dedicated binary watch lists (not by
        // insertion-time level-0 simplification).
        let mut solver = Solver::new(3);
        solver.add_clause([lit(0, false), lit(1, true)]);
        solver.add_clause([lit(1, false), lit(2, true)]);
        solver.add_clause([lit(0, true)]);
        match solver.solve() {
            SatResult::Sat(model) => assert_eq!(model, vec![true, true, true]),
            SatResult::Unsat => panic!("expected sat"),
        }
        assert!(solver.stats().binary_propagations >= 2);
    }

    #[test]
    fn unsat_requires_conflict_analysis() {
        // (a | b) & (a | !b) & (!a | b) & (!a | !b) is unsatisfiable.
        let mut cnf = Cnf::new(2);
        cnf.add_clause([lit(0, true), lit(1, true)]);
        cnf.add_clause([lit(0, true), lit(1, false)]);
        cnf.add_clause([lit(0, false), lit(1, true)]);
        cnf.add_clause([lit(0, false), lit(1, false)]);
        let mut solver = Solver::from_cnf(&cnf);
        assert_eq!(solver.solve(), SatResult::Unsat);
        assert!(solver.stats().conflicts >= 1);
    }

    fn pigeonhole_cnf(pigeons: u32) -> Cnf {
        let holes = pigeons - 1;
        let var = |i: u32, j: u32| i * holes + j;
        let mut cnf = Cnf::new(pigeons * holes);
        for i in 0..pigeons {
            cnf.add_clause((0..holes).map(|j| lit(var(i, j), true)));
        }
        for j in 0..holes {
            for i1 in 0..pigeons {
                for i2 in (i1 + 1)..pigeons {
                    cnf.add_clause([lit(var(i1, j), false), lit(var(i2, j), false)]);
                }
            }
        }
        cnf
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        let mut solver = Solver::from_cnf(&pigeonhole_cnf(3));
        assert_eq!(solver.solve(), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_is_unsat_under_every_config() {
        for (name, config) in config_matrix() {
            let mut solver = Solver::from_cnf_with_config(&pigeonhole_cnf(5), config);
            assert_eq!(solver.solve(), SatResult::Unsat, "config {name}");
        }
    }

    #[test]
    fn model_satisfies_formula() {
        // A slightly larger satisfiable instance.
        let mut cnf = Cnf::new(6);
        let clauses: Vec<Vec<(u32, bool)>> = vec![
            vec![(0, true), (1, false), (2, true)],
            vec![(1, true), (3, true)],
            vec![(2, false), (4, true), (5, false)],
            vec![(0, false), (5, true)],
            vec![(3, false), (4, false), (5, true)],
            vec![(1, true), (2, true), (4, true)],
        ];
        for c in &clauses {
            cnf.add_clause(c.iter().map(|&(v, s)| lit(v, s)));
        }
        let mut solver = Solver::from_cnf(&cnf);
        match solver.solve() {
            SatResult::Sat(model) => {
                assert!(cnf.eval(|v| model[v as usize]));
            }
            SatResult::Unsat => panic!("expected sat"),
        }
    }

    fn random_cnf(rng: &mut impl rand::Rng, max_vars: u32, max_clauses: usize) -> Cnf {
        let num_vars = rng.random_range(1..=max_vars);
        let num_clauses = rng.random_range(1..=max_clauses);
        let mut cnf = Cnf::new(num_vars);
        for _ in 0..num_clauses {
            let width = rng.random_range(1..=3usize);
            let clause: Vec<Lit> = (0..width)
                .map(|_| lit(rng.random_range(0..num_vars), rng.random_bool(0.5)))
                .collect();
            cnf.add_clause(clause);
        }
        cnf
    }

    fn brute_force_sat(cnf: &Cnf) -> bool {
        (0u64..(1 << cnf.num_vars)).any(|mask| cnf.eval(|v| mask & (1 << v) != 0))
    }

    #[test]
    fn solver_agrees_with_brute_force_on_random_formulas() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..300 {
            let cnf = random_cnf(&mut rng, 8, 24);
            let expected = brute_force_sat(&cnf);
            let mut solver = Solver::from_cnf(&cnf);
            let result = solver.solve();
            assert_eq!(
                result.is_sat(),
                expected,
                "disagreement on {}",
                cnf.to_dimacs()
            );
            if let SatResult::Sat(model) = result {
                assert!(cnf.eval(|v| model[v as usize]));
            }
        }
    }

    #[test]
    fn every_config_agrees_with_brute_force_on_random_formulas() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let matrix = config_matrix();
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        for _ in 0..80 {
            let cnf = random_cnf(&mut rng, 7, 22);
            let expected = brute_force_sat(&cnf);
            for (name, config) in &matrix {
                let mut solver = Solver::from_cnf_with_config(&cnf, *config);
                let result = solver.solve();
                assert_eq!(
                    result.is_sat(),
                    expected,
                    "config {name} disagrees on {}",
                    cnf.to_dimacs()
                );
                if let SatResult::Sat(model) = result {
                    assert!(cnf.eval(|v| model[v as usize]), "config {name} bad model");
                }
            }
        }
    }

    #[test]
    fn solve_is_repeatable() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause([lit(0, true), lit(1, true)]);
        cnf.add_clause([lit(1, false), lit(2, true)]);
        let mut solver = Solver::from_cnf(&cnf);
        let first = solver.solve();
        let second = solver.solve();
        assert_eq!(first.is_sat(), second.is_sat());
        assert!(first.is_sat());
    }

    #[test]
    fn assumptions_restrict_without_polluting() {
        // (a | b) is satisfiable; under assumptions !a, !b it is not.
        let mut cnf = Cnf::new(2);
        cnf.add_clause([lit(0, true), lit(1, true)]);
        let mut solver = Solver::from_cnf(&cnf);
        assert!(solver.solve().is_sat());
        assert_eq!(
            solver.solve_under_assumptions(&[lit(0, false), lit(1, false)]),
            SatResult::Unsat
        );
        // The assumptions were not added as clauses: still satisfiable.
        assert!(solver.solve().is_sat());
        // A single assumption forces the other variable.
        match solver.solve_under_assumptions(&[lit(0, false)]) {
            SatResult::Sat(model) => {
                assert!(!model[0]);
                assert!(model[1]);
            }
            SatResult::Unsat => panic!("expected sat"),
        }
    }

    #[test]
    fn assumptions_conflicting_with_units_are_unsat() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause([lit(0, true)]);
        let mut solver = Solver::from_cnf(&cnf);
        assert_eq!(
            solver.solve_under_assumptions(&[lit(0, false)]),
            SatResult::Unsat
        );
        // Redundant (already-implied) assumptions are fine.
        assert!(solver.solve_under_assumptions(&[lit(0, true)]).is_sat());
    }

    #[test]
    fn incremental_clause_addition_grows_the_universe() {
        let mut solver = Solver::new(0);
        assert!(solver.solve().is_sat());
        solver.add_clause([lit(0, true), lit(3, true)]);
        assert_eq!(solver.num_vars(), 4);
        assert!(solver.solve().is_sat());
        solver.add_clause([lit(0, false)]);
        solver.add_clause([lit(3, false)]);
        assert_eq!(solver.solve(), SatResult::Unsat);
    }

    #[test]
    fn learned_clauses_survive_assumption_cycles() {
        // An unsatisfiable core over x0..x2 plus a free selector x3. After a
        // first refutation under the selector, later calls reuse the learned
        // clauses (observable as a non-decreasing learned count and a correct
        // answer either way).
        let mut cnf = Cnf::new(4);
        let s = lit(3, false); // selector literal (x3 disables the core)
        for c in [
            vec![lit(0, true), lit(1, true)],
            vec![lit(0, true), lit(1, false)],
            vec![lit(0, false), lit(2, true)],
            vec![lit(0, false), lit(2, false)],
        ] {
            let mut clause = c.clone();
            clause.push(s.negated()); // core active only when x3 assumed false…
            cnf.add_clause(clause);
        }
        let mut solver = Solver::from_cnf(&cnf);
        assert_eq!(solver.solve_under_assumptions(&[s]), SatResult::Unsat);
        let learned_after_first = solver.stats().learned_clauses;
        // Without the activating assumption the formula is satisfiable.
        assert!(solver.solve().is_sat());
        // Re-activating is again unsatisfiable; learned clauses persisted.
        assert_eq!(solver.solve_under_assumptions(&[s]), SatResult::Unsat);
        assert!(solver.stats().learned_clauses >= learned_after_first);
    }

    #[test]
    fn incremental_and_monolithic_agree_on_random_formulas() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let mut rng = StdRng::seed_from_u64(0xACE);
        for _ in 0..100 {
            let num_vars = rng.random_range(1..=6u32);
            let num_clauses = rng.random_range(1..=18usize);
            let mut cnf = Cnf::new(num_vars);
            let mut incremental = Solver::new(num_vars as usize);
            for _ in 0..num_clauses {
                let width = rng.random_range(1..=3usize);
                let clause: Vec<Lit> = (0..width)
                    .map(|_| lit(rng.random_range(0..num_vars), rng.random_bool(0.5)))
                    .collect();
                cnf.add_clause(clause.clone());
                incremental.add_clause(clause);
                // Interleave solves to exercise clause retention mid-stream.
                let _ = incremental.solve();
            }
            let mut monolithic = Solver::from_cnf(&cnf);
            assert_eq!(
                incremental.solve().is_sat(),
                monolithic.solve().is_sat(),
                "disagreement on {}",
                cnf.to_dimacs()
            );
        }
    }

    #[test]
    fn incremental_streams_agree_across_configs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        // The same interleaved add/solve/assume stream must produce the
        // same verdicts whichever heuristics are on — the contract the
        // PDR query stream relies on.
        let matrix = config_matrix();
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        for _ in 0..25 {
            let num_vars = rng.random_range(2..=6u32);
            let num_clauses = rng.random_range(2..=16usize);
            let clauses: Vec<Vec<Lit>> = (0..num_clauses)
                .map(|_| {
                    (0..rng.random_range(1..=3usize))
                        .map(|_| lit(rng.random_range(0..num_vars), rng.random_bool(0.5)))
                        .collect()
                })
                .collect();
            let assumption = lit(rng.random_range(0..num_vars), rng.random_bool(0.5));
            let mut verdicts: Vec<Vec<bool>> = Vec::new();
            for (_, config) in &matrix {
                let mut solver = Solver::with_config(num_vars as usize, *config);
                let mut stream = Vec::new();
                for clause in &clauses {
                    solver.add_clause(clause.iter().copied());
                    stream.push(solver.solve_under_assumptions(&[assumption]).is_sat());
                    stream.push(solver.solve().is_sat());
                }
                verdicts.push(stream);
            }
            for window in verdicts.windows(2) {
                assert_eq!(window[0], window[1], "configs disagree on a stream");
            }
        }
    }

    #[test]
    fn assumption_order_does_not_matter() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause([lit(0, false), lit(1, true)]);
        cnf.add_clause([lit(1, false), lit(2, true)]);
        let mut solver = Solver::from_cnf(&cnf);
        for assumptions in [
            vec![lit(0, true), lit(2, false)],
            vec![lit(2, false), lit(0, true)],
        ] {
            assert_eq!(
                solver.solve_under_assumptions(&assumptions),
                SatResult::Unsat
            );
        }
        assert!(solver
            .solve_under_assumptions(&[lit(0, true), lit(2, true)])
            .is_sat());
    }

    #[test]
    fn phase_saving_toggle_preserves_verdicts() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let mut rng = StdRng::seed_from_u64(0x9A5E);
        for _ in 0..60 {
            let num_vars = rng.random_range(1..=7u32);
            let num_clauses = rng.random_range(1..=20usize);
            let mut cnf = Cnf::new(num_vars);
            for _ in 0..num_clauses {
                let width = rng.random_range(1..=3usize);
                let clause: Vec<Lit> = (0..width)
                    .map(|_| lit(rng.random_range(0..num_vars), rng.random_bool(0.5)))
                    .collect();
                cnf.add_clause(clause);
            }
            let mut saved = Solver::from_cnf(&cnf);
            assert!(saved.phase_saving());
            let mut fixed = Solver::from_cnf(&cnf);
            fixed.set_phase_saving(false);
            assert_eq!(saved.solve().is_sat(), fixed.solve().is_sat());
        }
    }

    #[test]
    fn phase_saving_revisits_last_polarity() {
        // Assuming an otherwise-unconstrained variable true records its
        // phase; with phase saving on the next unassumed solve re-decides it
        // true, with phase saving off it falls back to the `false` default.
        let mut cnf = Cnf::new(2);
        cnf.add_clause([lit(0, true), lit(1, true)]);
        let mut solver = Solver::from_cnf(&cnf);
        assert!(solver.solve_under_assumptions(&[lit(1, true)]).is_sat());
        match solver.solve() {
            SatResult::Sat(model) => assert!(model[1], "saved phase is reused"),
            SatResult::Unsat => panic!("expected sat"),
        }
        solver.set_phase_saving(false);
        match solver.solve() {
            SatResult::Sat(model) => assert!(!model[1], "default polarity is false"),
            SatResult::Unsat => panic!("expected sat"),
        }
    }

    #[test]
    fn stats_are_populated() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause([lit(0, true), lit(1, true)]);
        let mut solver = Solver::from_cnf(&cnf);
        let _ = solver.solve();
        assert!(solver.stats().decisions >= 1);
    }

    #[test]
    fn minimization_shrinks_learned_clauses() {
        // Pigeonhole conflicts produce learned clauses with redundant
        // literals; the recursive minimization must fire (and the verdict
        // stay correct). The no-minimize config must report zero.
        let mut on = Solver::from_cnf(&pigeonhole_cnf(6));
        assert_eq!(on.solve(), SatResult::Unsat);
        assert!(
            on.stats().minimized_literals > 0,
            "minimization never fired: {:?}",
            on.stats()
        );
        let mut off = Solver::from_cnf_with_config(
            &pigeonhole_cnf(6),
            SolverConfig {
                minimize: false,
                ..SolverConfig::default()
            },
        );
        assert_eq!(off.solve(), SatResult::Unsat);
        assert_eq!(off.stats().minimized_literals, 0);
    }

    #[test]
    fn database_reduction_fires_and_preserves_verdicts() {
        let config = SolverConfig {
            reduce_base: 1,
            ..SolverConfig::default()
        };
        let mut solver = Solver::from_cnf_with_config(&pigeonhole_cnf(6), config);
        assert_eq!(solver.solve(), SatResult::Unsat);
        let stats = solver.stats();
        assert!(stats.reductions > 0, "reduction never fired: {stats:?}");
        assert!(stats.removed_clauses > 0);
        // The solver stays usable after reductions.
        assert_eq!(solver.solve(), SatResult::Unsat);
    }

    #[test]
    fn luby_sequence_is_correct() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let actual: Vec<u64> = (0..expected.len() as u64).map(luby).collect();
        assert_eq!(actual, expected);
    }

    #[test]
    fn level_zero_units_persist_across_calls() {
        // After a first solve derives unit consequences, re-solving with no
        // intervening mutation must not redo the level-0 propagation work.
        // (Binary clauses first: the unit chain is then derived by
        // propagation, not by insertion-time simplification.)
        let mut solver = Solver::new(3);
        solver.add_clause([lit(0, false), lit(1, true)]);
        solver.add_clause([lit(1, false), lit(2, true)]);
        solver.add_clause([lit(0, true)]);
        assert!(solver.solve().is_sat());
        let after_first = solver.stats();
        assert!(solver.solve().is_sat());
        let after_second = solver.stats();
        assert_eq!(
            after_first.propagations + after_first.binary_propagations,
            after_second.propagations + after_second.binary_propagations,
            "re-solve repeated level-0 propagation"
        );
    }

    #[test]
    fn legacy_reset_repeats_unit_propagation() {
        // The baseline configuration must pay the per-call re-scan (that is
        // the overhead E11 measures).
        let mut solver = Solver::with_config(2, SolverConfig::baseline());
        solver.add_clause([lit(0, false), lit(1, true)]);
        solver.add_clause([lit(0, true)]);
        assert!(solver.solve().is_sat());
        let first = solver.stats();
        assert!(solver.solve().is_sat());
        let second = solver.stats();
        assert!(
            second.propagations + second.binary_propagations
                > first.propagations + first.binary_propagations,
            "legacy reset should repeat level-0 propagation"
        );
    }

    #[test]
    fn set_config_between_solves_is_sound() {
        let cnf = pigeonhole_cnf(5);
        let mut solver = Solver::from_cnf(&cnf);
        assert_eq!(solver.solve(), SatResult::Unsat);
        let mut solver = Solver::from_cnf(&cnf);
        solver.set_config(SolverConfig::baseline());
        assert_eq!(solver.solve(), SatResult::Unsat);
        solver.set_config(SolverConfig::default());
        assert_eq!(solver.solve(), SatResult::Unsat);
    }

    #[test]
    fn set_config_can_lower_the_reduction_limit() {
        // Lowering `reduce_base` after construction must re-arm the
        // reduction threshold, not stay clamped at the constructor's
        // (higher) limit.
        let cnf = pigeonhole_cnf(6);
        let mut solver = Solver::from_cnf(&cnf);
        solver.set_config(SolverConfig {
            reduce_base: 1,
            ..SolverConfig::default()
        });
        assert_eq!(solver.solve(), SatResult::Unsat);
        assert!(
            solver.stats().reductions > 0,
            "lowered base must arm reduction: {:?}",
            solver.stats()
        );
    }

    #[test]
    fn stats_delta_isolates_one_call_of_an_incremental_stream() {
        let cnf = pigeonhole_cnf(5);
        let mut solver = Solver::from_cnf(&cnf);
        assert_eq!(solver.solve(), SatResult::Unsat);
        let after_first = solver.stats();
        assert!(after_first.conflicts > 0);
        // A second solver over the same formula: its fresh stats must match
        // the delta computed over the incremental stream.
        let mut fresh = Solver::from_cnf(&cnf);
        assert_eq!(fresh.solve(), SatResult::Unsat);
        let one_call = fresh.stats();
        let mut again = Solver::from_cnf(&cnf);
        assert_eq!(again.solve(), SatResult::Unsat);
        assert_eq!(again.solve(), SatResult::Unsat);
        let _cumulative = again.stats();
        let second_only = again.stats().delta(&one_call);
        // The repeat call on `again` is cheap (formula already refuted), so
        // the delta must be far below a from-scratch refutation.
        assert!(second_only.conflicts <= one_call.conflicts);
        // Deltas against oneself are zero.
        let zero = after_first.delta(&after_first);
        assert_eq!(zero, SolverStats::default());
    }

    #[test]
    fn tracer_records_solve_spans_and_restart_events() {
        use ipcl_trace::{TraceConfig, Tracer};
        let cnf = pigeonhole_cnf(6);
        let tracer = Tracer::new(TraceConfig::enabled());
        let mut solver = Solver::from_cnf(&cnf);
        solver.set_tracer(tracer.clone());
        assert_eq!(solver.solve(), SatResult::Unsat);
        let snapshot = tracer.snapshot().unwrap();
        let solve = snapshot
            .spans
            .iter()
            .find(|s| s.path == ["sat.solve"])
            .expect("sat.solve span recorded");
        assert_eq!(solve.count, 1);
        assert!(
            snapshot.events.iter().any(|e| e.kind == "solver_restart"),
            "pigeonhole(6) restarts at least once"
        );
        // The stats delta emits through the MetricSink unification.
        solver.stats().emit(&tracer, "sat");
        let snapshot = tracer.snapshot().unwrap();
        assert_eq!(snapshot.counters["sat.conflicts"], solver.stats().conflicts);
    }

    #[test]
    fn imported_clauses_constrain_and_count() {
        // x0 ∨ x1 alone is satisfiable; importing the two unit lemmas
        // ¬x0 and ¬x1 (implied by nothing here, but the caller vouches)
        // makes the formula unsat — imports participate in propagation.
        let mut cnf = Cnf::new(2);
        cnf.add_clause([lit(0, true), lit(1, true)]);
        let mut solver = Solver::from_cnf(&cnf);
        assert!(solver.solve().is_sat());
        assert!(solver.import_clause([lit(0, false)], 1));
        assert!(solver.import_clause([lit(1, false)], 1));
        assert_eq!(solver.stats().imported_clauses, 2);
        assert_eq!(solver.solve(), SatResult::Unsat);
        // Tautologies are dropped and not counted.
        assert!(!solver.import_clause([lit(3, true), lit(3, false)], 2));
        assert_eq!(solver.stats().imported_clauses, 2);
    }

    #[test]
    fn imported_clauses_grow_the_universe() {
        let mut solver = Solver::new(1);
        assert!(solver.import_clause([lit(7, true)], 1));
        match solver.solve() {
            SatResult::Sat(model) => assert!(model[7]),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn imported_clauses_survive_database_reduction() {
        // Run pigeonhole with an aggressive reduction schedule, with an
        // imported (redundant) lemma in place: reductions must fire and the
        // import must survive them, per the permanence contract.
        let config = SolverConfig {
            reduce_base: 1,
            ..SolverConfig::default()
        };
        let cnf = pigeonhole_cnf(6);
        let mut solver = Solver::from_cnf_with_config(&cnf, config);
        // A redundant-but-sound lemma: the first pigeon sits somewhere.
        let mut lemma: Vec<Lit> = cnf.clauses[0].clone();
        lemma.sort_unstable();
        assert!(solver.import_clause(lemma.clone(), 3));
        // The watch lists reorder literals in place, so count by sorted set.
        let count_lemma = |solver: &Solver| {
            solver
                .clauses
                .iter()
                .filter(|c| {
                    let mut lits = c.literals.clone();
                    lits.sort_unstable();
                    lits == lemma
                })
                .count()
        };
        let before = count_lemma(&solver);
        assert_eq!(solver.solve(), SatResult::Unsat);
        assert!(solver.stats().reductions > 0, "reduction never fired");
        let after = count_lemma(&solver);
        assert_eq!(before, after, "imported lemma dropped by reduce_db");
    }

    #[test]
    fn clause_sharing_captures_good_lemmas_and_drains() {
        let mut solver = Solver::from_cnf(&pigeonhole_cnf(6));
        solver.set_clause_sharing(4);
        assert_eq!(solver.solve(), SatResult::Unsat);
        let shared = solver.take_shared();
        assert!(
            !shared.is_empty(),
            "pigeonhole(6) learns low-LBD clauses: {:?}",
            solver.stats()
        );
        for (literals, lbd) in &shared {
            assert!(*lbd <= 4, "LBD filter violated: {lbd}");
            assert!(literals.len() <= SHARE_MAX_LEN);
        }
        assert_eq!(solver.stats().exported_clauses, shared.len() as u64);
        // Drained: a second take returns nothing new.
        assert!(solver.take_shared().is_empty());
        // Round-trip: importing the shared lemmas into a fresh solver on the
        // same formula keeps it sound (still unsat).
        let mut sibling = Solver::from_cnf(&pigeonhole_cnf(6));
        for (literals, lbd) in shared {
            sibling.import_clause(literals, lbd);
        }
        assert_eq!(sibling.solve(), SatResult::Unsat);
    }

    #[test]
    fn clause_sharing_disabled_by_default() {
        let mut solver = Solver::from_cnf(&pigeonhole_cnf(6));
        assert_eq!(solver.solve(), SatResult::Unsat);
        assert!(solver.take_shared().is_empty());
        assert_eq!(solver.stats().exported_clauses, 0);
    }
}
