//! Typed counterexample traces and deterministic replay.
//!
//! A BMC falsification is only as trustworthy as its interpretation: the
//! solver model lives in CNF-land, so [`Counterexample`] reduces it to what
//! the engineer needs — *the input sequence* — and [`Counterexample::replay`]
//! re-runs that sequence through the cycle-accurate [`ipcl_rtl::Simulator`]
//! and re-evaluates the violated property on real signal values. A
//! counterexample that does not replay indicates an encoding bug, so the
//! checker asserts replayability before reporting.

use std::collections::BTreeMap;

use ipcl_core::FunctionalSpec;
use ipcl_expr::VarId;
use ipcl_rtl::{Netlist, RtlError, SignalKind, Simulator};

use crate::property::SequentialProperty;

/// A falsifying execution: one input valuation per frame, ending at the
/// frame where the property instance evaluates false.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Counterexample {
    /// Name of the violated property (`"long.4/functional"`, …).
    pub property: String,
    /// Per-frame valuations of the primary inputs (and of any specification
    /// environment variables the netlist does not implement), keyed by
    /// signal name.
    pub frames: Vec<BTreeMap<String, bool>>,
    /// The frame at which the property's `moe` sample is violated (always
    /// the last frame of the trace).
    pub violation_frame: usize,
}

/// The signal values observed while replaying a counterexample.
#[derive(Clone, Debug)]
pub struct Replay {
    /// Per-frame values of every specification variable as seen by the
    /// property evaluation (environment from the trace, `moe` from the
    /// simulator), keyed by name.
    pub observations: Vec<BTreeMap<String, bool>>,
    /// Whether the property indeed evaluates false at the violation frame.
    pub violation_reproduced: bool,
}

/// Appends `s` as a JSON string literal (quotes, escapes). Local copy of
/// `ipcl_tracetool::json::write_json_string` — the emit side must not pull
/// the trace-analytics crate into the proof engine.
fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Counterexample {
    /// Number of frames (cycles) in the trace.
    pub fn length(&self) -> usize {
        self.frames.len()
    }

    /// Replays the trace through a fresh [`Simulator`] of `netlist` and
    /// re-evaluates `property` at the violation frame.
    ///
    /// Environment variables are read from the recorded frame at the
    /// property's latency offset; `moe` variables are read from the *live
    /// simulator* at the violation frame — so a reproduced violation really
    /// is a statement about the implementation, not about the solver model.
    ///
    /// # Errors
    ///
    /// Propagates [`RtlError`]s from netlist elaboration.
    pub fn replay(
        &self,
        spec: &FunctionalSpec,
        netlist: &Netlist,
        property: &SequentialProperty,
    ) -> Result<Replay, RtlError> {
        let mut simulator = Simulator::new(netlist)?;
        let moe_vars: std::collections::BTreeSet<VarId> = spec.moe_vars().into_iter().collect();
        let pool = spec.pool();
        let mut observations = Vec::with_capacity(self.frames.len());
        let mut violation_reproduced = false;

        for (frame, inputs) in self.frames.iter().enumerate() {
            // Drive every recorded value that is a primary input — batched,
            // so the frame costs one combinational settle, not one per
            // driven signal.
            simulator.set_inputs(inputs.iter().filter_map(|(name, &value)| {
                let signal = netlist.find(name)?;
                matches!(netlist.signal(signal).kind, SignalKind::Input).then_some((signal, value))
            }));

            // Observe the property's view of this frame.
            let env_frame = frame.saturating_sub(property.latency.offset());
            let lookup = |var: VarId| -> bool {
                let name = pool.name_or_fallback(var);
                if moe_vars.contains(&var) {
                    simulator.value_by_name(&name).unwrap_or(false)
                } else {
                    self.frames[env_frame].get(&name).copied().unwrap_or(false)
                }
            };
            let mut observed = BTreeMap::new();
            for var in property.ok.vars() {
                observed.insert(pool.name_or_fallback(var), lookup(var));
            }
            if frame == self.violation_frame
                && frame >= property.latency.first_instance()
                && !property.ok.eval_with(lookup)
            {
                violation_reproduced = true;
            }
            observations.push(observed);
            simulator.step();
        }

        Ok(Replay {
            observations,
            violation_reproduced,
        })
    }

    /// Serialises the trace as a single-line JSON object:
    ///
    /// ```json
    /// {"property": "long.4/functional", "violation_frame": 3,
    ///  "frames": [{"long.req": true, "c.gnt": false, ...}, ...]}
    /// ```
    ///
    /// The format is the storage side of the `ipcl-serve` result cache;
    /// the matching parser lives there (`ipcl_serve::protocol`). Signal
    /// names are JSON-escaped, so any netlist naming round-trips.
    pub fn to_json_string(&self) -> String {
        let mut out = String::from("{\"property\": ");
        write_json_string(&mut out, &self.property);
        out.push_str(&format!(
            ", \"violation_frame\": {}, \"frames\": [",
            self.violation_frame
        ));
        for (i, frame) in self.frames.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('{');
            for (j, (name, value)) in frame.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                write_json_string(&mut out, name);
                out.push_str(&format!(": {value}"));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Renders the trace as a waveform-style table for reports.
    pub fn render(&self) -> String {
        let mut names: Vec<&String> = self.frames.iter().flat_map(|frame| frame.keys()).collect();
        names.sort();
        names.dedup();
        let mut out = format!(
            "counterexample for {} ({} cycle{}):\n",
            self.property,
            self.length(),
            if self.length() == 1 { "" } else { "s" }
        );
        for name in names {
            let values: String = self
                .frames
                .iter()
                .map(|frame| match frame.get(name) {
                    Some(true) => '1',
                    Some(false) => '0',
                    None => '-',
                })
                .collect();
            out.push_str(&format!("  {name:<28} {values}\n"));
        }
        out
    }
}
