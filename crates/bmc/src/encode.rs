//! Shared property-instance encoding over unrolled netlists.
//!
//! Both sequential engines — bounded model checking / k-induction
//! ([`crate::engine`]) and the IC3/PDR engine of `ipcl-pdr` — need the same
//! plumbing between a [`SequentialProperty`] and a time-frame unrolling:
//!
//! * mapping a specification variable to the netlist signal of the same
//!   name (or to a cached auxiliary CNF literal when the netlist does not
//!   implement it);
//! * Tseitin-encoding a property instance with the `moe` variables sampled
//!   at one frame and the environment sampled [`crate::Latency::offset`]
//!   frames earlier;
//! * decoding a solver model back into per-frame input valuations that
//!   replay through [`ipcl_rtl::Simulator`].
//!
//! [`FrameEncoder`] packages that plumbing around an [`Unroller`]. It owns
//! no SAT solver: each engine keeps its own solver and transfers the
//! unroller's (append-only) clauses at its own cadence.

use std::collections::{BTreeMap, BTreeSet};

use ipcl_core::FunctionalSpec;
use ipcl_expr::{Expr, Lit, VarId};
use ipcl_rtl::{InitialState, Netlist, RtlError, Unroller};

use crate::property::SequentialProperty;

/// Bookkeeping to transfer an encoder's (append-only) clauses into an
/// incremental [`ipcl_sat::Solver`], pushing only the suffix generated
/// since the previous sync. Both engines keep one per solver.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolverSync {
    pushed_clauses: usize,
}

impl SolverSync {
    /// Transfers the clauses `encoder` generated since the last call into
    /// `solver`.
    pub fn sync(&mut self, encoder: &FrameEncoder, solver: &mut ipcl_sat::Solver) {
        let cnf = encoder.unroller().cnf();
        solver.reserve_vars(cnf.num_vars as usize);
        for clause in &cnf.clauses[self.pushed_clauses..] {
            solver.add_clause(clause.iter().copied());
        }
        self.pushed_clauses = cnf.clauses.len();
    }
}

/// An [`Unroller`] plus the property-encoding state shared by the BMC and
/// PDR engines: auxiliary literals for unimplemented specification
/// variables, and the quiet-cycle discipline for reset-rooted unrollings.
pub struct FrameEncoder {
    unroller: Unroller,
    /// Auxiliary literals for spec variables the netlist does not implement,
    /// keyed by `(frame, var)`.
    aux: BTreeMap<(usize, VarId), Lit>,
    quiet_cycles: usize,
}

impl FrameEncoder {
    /// Builds an encoder over a fresh unrolling of `netlist` with no frames
    /// yet. `quiet_cycles` leading frames have their inputs forced to zero
    /// (only honoured for [`InitialState::Reset`] unrollings: the post-reset
    /// environment of an interlocked pipeline is quiet, so constraining the
    /// first frame(s) rules out counterfeit "hazard at reset" traces).
    ///
    /// # Errors
    ///
    /// Propagates [`RtlError`]s from netlist elaboration.
    pub fn new(
        netlist: &Netlist,
        initial: InitialState,
        quiet_cycles: usize,
    ) -> Result<Self, RtlError> {
        let unroller = Unroller::new(netlist, initial)?;
        Ok(FrameEncoder {
            unroller,
            aux: BTreeMap::new(),
            quiet_cycles: if initial == InitialState::Reset {
                quiet_cycles
            } else {
                0
            },
        })
    }

    /// The underlying unroller.
    pub fn unroller(&self) -> &Unroller {
        &self.unroller
    }

    /// Mutable access to the underlying unroller (for engine-specific
    /// clauses: activation literals, loop-free path constraints, …).
    pub fn unroller_mut(&mut self) -> &mut Unroller {
        &mut self.unroller
    }

    /// Appends frames until `frames` exist, forcing quiet-cycle inputs low.
    pub fn ensure_frames(&mut self, frames: usize) {
        while self.unroller.num_frames() < frames {
            let frame = self.unroller.add_frame();
            if frame < self.quiet_cycles {
                for input in self.unroller.netlist().inputs() {
                    let lit = self.unroller.lit(frame, input);
                    self.unroller.add_clause([lit.negated()]);
                }
            }
        }
    }

    /// The literal of spec variable `var` at `frame`: the netlist signal of
    /// the same name when it exists, a cached auxiliary literal otherwise.
    pub fn var_lit(&mut self, spec: &FunctionalSpec, frame: usize, var: VarId) -> Lit {
        let name = spec.pool().name_or_fallback(var);
        if let Some(signal) = self.unroller.netlist().find(&name) {
            return self.unroller.lit(frame, signal);
        }
        if let Some(&lit) = self.aux.get(&(frame, var)) {
            return lit;
        }
        let lit = self.unroller.fresh_lit();
        // Auxiliary environment variables respect the quiet-cycle constraint
        // like real inputs.
        if frame < self.quiet_cycles {
            self.unroller.add_clause([lit.negated()]);
        }
        self.aux.insert((frame, var), lit);
        lit
    }

    /// Tseitin-encodes `expr` over the literals of a property instance:
    /// `moe` variables at `moe_frame`, everything else at `env_frame`.
    pub fn encode_expr(
        &mut self,
        spec: &FunctionalSpec,
        moe_vars: &BTreeSet<VarId>,
        expr: &Expr,
        env_frame: usize,
        moe_frame: usize,
    ) -> Lit {
        match expr {
            Expr::Const(true) => self.unroller.const_true(),
            Expr::Const(false) => self.unroller.const_true().negated(),
            Expr::Var(var) => {
                let frame = if moe_vars.contains(var) {
                    moe_frame
                } else {
                    env_frame
                };
                self.var_lit(spec, frame, *var)
            }
            Expr::Not(e) => self
                .encode_expr(spec, moe_vars, e, env_frame, moe_frame)
                .negated(),
            Expr::And(ops) => {
                let lits: Vec<Lit> = ops
                    .iter()
                    .map(|op| self.encode_expr(spec, moe_vars, op, env_frame, moe_frame))
                    .collect();
                self.unroller.define_and(&lits)
            }
            Expr::Or(ops) => {
                let negated: Vec<Lit> = ops
                    .iter()
                    .map(|op| {
                        self.encode_expr(spec, moe_vars, op, env_frame, moe_frame)
                            .negated()
                    })
                    .collect();
                self.unroller.define_and(&negated).negated()
            }
            Expr::Implies(l, r) => {
                let l = self.encode_expr(spec, moe_vars, l, env_frame, moe_frame);
                let r = self.encode_expr(spec, moe_vars, r, env_frame, moe_frame);
                self.unroller.define_and(&[l, r.negated()]).negated()
            }
            Expr::Iff(l, r) => {
                let l = self.encode_expr(spec, moe_vars, l, env_frame, moe_frame);
                let r = self.encode_expr(spec, moe_vars, r, env_frame, moe_frame);
                self.unroller.define_xor(l, r).negated()
            }
            Expr::Xor(l, r) => {
                let l = self.encode_expr(spec, moe_vars, l, env_frame, moe_frame);
                let r = self.encode_expr(spec, moe_vars, r, env_frame, moe_frame);
                self.unroller.define_xor(l, r)
            }
            Expr::Ite(c, t, e) => {
                let c = self.encode_expr(spec, moe_vars, c, env_frame, moe_frame);
                let t = self.encode_expr(spec, moe_vars, t, env_frame, moe_frame);
                let e = self.encode_expr(spec, moe_vars, e, env_frame, moe_frame);
                self.unroller.define_mux(c, t, e)
            }
        }
    }

    /// Encodes the property instance whose `moe` sample is `moe_frame`,
    /// returning the literal of `ok` at that instance. Frames up to
    /// `moe_frame` must already exist (see [`FrameEncoder::ensure_frames`]).
    pub fn encode_instance(
        &mut self,
        spec: &FunctionalSpec,
        moe_vars: &BTreeSet<VarId>,
        property: &SequentialProperty,
        moe_frame: usize,
    ) -> Lit {
        let env_frame = moe_frame - property.latency.offset();
        self.encode_expr(spec, moe_vars, &property.ok, env_frame, moe_frame)
    }

    /// Decodes one frame of a model into an input valuation: every primary
    /// input, every specification environment variable the netlist
    /// implements as a non-input signal (the replay evaluates the property's
    /// environment from the recorded frames, not from the simulator), and
    /// every auxiliary variable of the frame.
    pub fn decode_frame(
        &self,
        spec: &FunctionalSpec,
        model: &[bool],
        frame: usize,
    ) -> BTreeMap<String, bool> {
        let lit_value = |lit: Lit| model[lit.var() as usize] == lit.is_positive();
        let mut values = BTreeMap::new();
        for input in self.unroller.netlist().inputs() {
            let name = self.unroller.netlist().signal(input).name.clone();
            values.insert(name, lit_value(self.unroller.lit(frame, input)));
        }
        for var in spec.env_vars() {
            let name = spec.pool().name_or_fallback(var);
            if let Some(signal) = self.unroller.netlist().find(&name) {
                values
                    .entry(name)
                    .or_insert_with(|| lit_value(self.unroller.lit(frame, signal)));
            }
        }
        for (&(aux_frame, var), &lit) in &self.aux {
            if aux_frame == frame {
                values.insert(spec.pool().name_or_fallback(var), lit_value(lit));
            }
        }
        values
    }

    /// Decodes a model into per-frame input valuations
    /// (see [`FrameEncoder::decode_frame`]).
    pub fn decode_trace(
        &self,
        spec: &FunctionalSpec,
        model: &[bool],
        frames: usize,
    ) -> Vec<BTreeMap<String, bool>> {
        (0..frames)
            .map(|frame| self.decode_frame(spec, model, frame))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::property::{Latency, PropertyKind};
    use ipcl_core::example::ExampleArch;
    use ipcl_sat::{SatResult, Solver};
    use ipcl_synth::synthesize_interlock;

    #[test]
    fn instance_encoding_is_satisfiable_and_decodes_every_input() {
        let spec = ExampleArch::new().functional_spec();
        let synthesized = synthesize_interlock(&spec);
        let mut enc = FrameEncoder::new(synthesized.netlist(), InitialState::Reset, 0).unwrap();
        enc.ensure_frames(2);
        let moe_vars: BTreeSet<VarId> = spec.moe_vars().into_iter().collect();
        let property =
            SequentialProperty::for_stage(&spec, 0, PropertyKind::Combined, Latency::Combinational);
        let ok = enc.encode_instance(&spec, &moe_vars, &property, 1);
        let mut solver = Solver::from_cnf(enc.unroller().cnf());
        // The derived interlock satisfies the combined property: `ok` is
        // forced, its negation is unsatisfiable.
        assert!(solver.solve_under_assumptions(&[ok]).is_sat());
        assert_eq!(
            solver.solve_under_assumptions(&[ok.negated()]),
            SatResult::Unsat
        );
        if let SatResult::Sat(model) = solver.solve_under_assumptions(&[ok]) {
            let frames = enc.decode_trace(&spec, &model, 2);
            assert_eq!(frames.len(), 2);
            for input in enc.unroller().netlist().inputs() {
                let name = &enc.unroller().netlist().signal(input).name;
                assert!(frames[0].contains_key(name), "{name} missing from trace");
            }
        }
    }

    #[test]
    fn quiet_cycles_force_inputs_low_in_reset_unrollings_only() {
        let spec = ExampleArch::new().functional_spec();
        let synthesized = synthesize_interlock(&spec);
        let mut reset = FrameEncoder::new(synthesized.netlist(), InitialState::Reset, 1).unwrap();
        reset.ensure_frames(1);
        let input = reset.unroller().netlist().inputs()[0];
        let lit = reset.unroller().lit(0, input);
        let mut solver = Solver::from_cnf(reset.unroller().cnf());
        assert_eq!(solver.solve_under_assumptions(&[lit]), SatResult::Unsat);

        // A free unrolling ignores quiet cycles (the induction step must
        // consider arbitrary environments).
        let mut free = FrameEncoder::new(synthesized.netlist(), InitialState::Free, 1).unwrap();
        free.ensure_frames(1);
        let free_lit = free.unroller().lit(0, input);
        let mut solver = Solver::from_cnf(free.unroller().cnf());
        assert!(solver.solve_under_assumptions(&[free_lit]).is_sat());
    }
}
