//! SAT-based bounded model checking and k-induction for sequential
//! interlock verification.
//!
//! The paper's case study finds *sequential* bugs — wrong reset values,
//! stalls that arrive a cycle late — which the combinational checks of
//! `ipcl-checker` cannot see and random simulation can only sample. This
//! crate makes registered interlock implementations provable objects:
//!
//! * [`engine::check_property`] unrolls an `ipcl-rtl` [`Netlist`] over time
//!   frames (via [`ipcl_rtl::unroll`]) and decides each
//!   [`SequentialProperty`] with the incremental CDCL solver of `ipcl-sat`:
//!   **falsification** returns a minimal-length, simulator-replayable
//!   [`Counterexample`]; **k-induction** (base cases + loop-free inductive
//!   step) returns a proof valid for *all* cycles, not just the unrolled
//!   ones.
//! * [`engine::check_stall_escape`] proves the absence of deadlock/livelock:
//!   from any state in which a stage is stalled, an idle environment
//!   releases the stall within a bounded number of cycles.
//!
//! The user-facing entry point is `ipcl_checker::check_netlist_sequential`,
//! which builds the property portfolio, runs the checks in parallel and
//! combines them with the reset-value check and a random-simulation
//! pre-pass.
//!
//! # Example
//!
//! ```
//! use ipcl_bmc::{check_property, BmcOptions, Latency, PropertyKind, SequentialProperty};
//! use ipcl_core::example::ExampleArch;
//! use ipcl_synth::synthesize_interlock;
//!
//! let spec = ExampleArch::new().functional_spec();
//! let synthesized = synthesize_interlock(&spec);
//! // The derived combinational interlock is not just bug-free up to a
//! // bound: k-induction proves it correct on every cycle.
//! let property = SequentialProperty::for_stage(&spec, 0, PropertyKind::Combined,
//!     Latency::Combinational);
//! let result = check_property(&spec, synthesized.netlist(), &property,
//!     &BmcOptions::default()).unwrap();
//! assert!(result.outcome.is_proved());
//! ```

pub mod encode;
pub mod engine;
pub mod property;
pub mod trace;

pub use encode::{FrameEncoder, SolverSync};
pub use engine::{
    check_property, check_property_traced, check_property_with_cancel, check_stall_escape,
    missing_moe_signals, missing_property_signals, BmcError, BmcOptions, BmcOutcome, BmcResult,
    BmcStats, StallEscapeReport,
};
pub use property::{Latency, PropertyKind, SequentialProperty};
pub use trace::{Counterexample, Replay};

// Re-exported so callers can name the netlist type without a direct
// `ipcl-rtl` dependency.
pub use ipcl_rtl::Netlist;

#[cfg(test)]
mod tests {
    use super::*;
    use ipcl_core::example::ExampleArch;
    use ipcl_synth::{synthesize_interlock, synthesize_interlock_with, SynthesisOptions};

    fn spec() -> ipcl_core::FunctionalSpec {
        ExampleArch::new().functional_spec()
    }

    #[test]
    fn combinational_interlock_is_proved_for_all_stages_and_kinds() {
        let spec = spec();
        let synthesized = synthesize_interlock(&spec);
        for kind in PropertyKind::ALL {
            for property in SequentialProperty::for_spec(&spec, kind, Latency::Combinational) {
                let result = check_property(
                    &spec,
                    synthesized.netlist(),
                    &property,
                    &BmcOptions::default(),
                )
                .unwrap();
                assert!(
                    result.outcome.is_proved(),
                    "{} should be proved, got {:?}",
                    property.name,
                    result.outcome
                );
            }
        }
    }

    #[test]
    fn registered_interlock_is_proved_at_registered_latency() {
        let spec = spec();
        let synthesized = synthesize_interlock_with(
            &spec,
            SynthesisOptions {
                registered_outputs: true,
                reset_value: true,
                ..Default::default()
            },
        );
        assert_eq!(
            Latency::detect(&spec, synthesized.netlist()),
            Latency::Registered
        );
        for property in
            SequentialProperty::for_spec(&spec, PropertyKind::Combined, Latency::Registered)
        {
            let result = check_property(
                &spec,
                synthesized.netlist(),
                &property,
                &BmcOptions::default(),
            )
            .unwrap();
            assert!(
                result.outcome.is_proved(),
                "{}: {:?}",
                property.name,
                result.outcome
            );
        }
    }

    #[test]
    fn wrong_reset_is_falsified_with_a_one_cycle_trace() {
        let spec = spec();
        let synthesized = synthesize_interlock_with(
            &spec,
            SynthesisOptions {
                registered_outputs: true,
                reset_value: false,
                ..Default::default()
            },
        );
        // Checked at combinational latency: the stalled-out-of-reset flags
        // are performance violations visible in the very first frame.
        let completion_stage = 0; // long.4, the completion stage
        let property = SequentialProperty::for_stage(
            &spec,
            completion_stage,
            PropertyKind::Performance,
            Latency::Combinational,
        );
        let result = check_property(
            &spec,
            synthesized.netlist(),
            &property,
            &BmcOptions::default(),
        )
        .unwrap();
        let cex = result
            .outcome
            .counterexample()
            .expect("wrong reset must be falsified")
            .clone();
        assert_eq!(cex.length(), 1, "minimal trace is the reset frame itself");
        let replay = cex.replay(&spec, synthesized.netlist(), &property).unwrap();
        assert!(replay.violation_reproduced, "{}", cex.render());
    }

    #[test]
    fn late_stall_is_falsified_with_a_two_cycle_trace() {
        let spec = spec();
        // Correct reset but registered outputs: the stall arrives one cycle
        // after the hazard. Checked against the combinational-latency
        // functional property this is the paper's late-stall bug; the first
        // frame is quiet, so the minimal trace is hazard-at-1.
        let synthesized = synthesize_interlock_with(
            &spec,
            SynthesisOptions {
                registered_outputs: true,
                reset_value: true,
                ..Default::default()
            },
        );
        let property = SequentialProperty::for_stage(
            &spec,
            0,
            PropertyKind::Functional,
            Latency::Combinational,
        );
        let result = check_property(
            &spec,
            synthesized.netlist(),
            &property,
            &BmcOptions::default(),
        )
        .unwrap();
        let cex = result
            .outcome
            .counterexample()
            .expect("late stall must be falsified")
            .clone();
        assert_eq!(cex.length(), 2, "{}", cex.render());
        let replay = cex.replay(&spec, synthesized.netlist(), &property).unwrap();
        assert!(replay.violation_reproduced, "{}", cex.render());
    }

    #[test]
    fn incremental_and_scratch_agree() {
        let spec = spec();
        let synthesized = synthesize_interlock_with(
            &spec,
            SynthesisOptions {
                registered_outputs: true,
                reset_value: true,
                ..Default::default()
            },
        );
        let property = SequentialProperty::for_stage(
            &spec,
            0,
            PropertyKind::Functional,
            Latency::Combinational,
        );
        let incremental = check_property(
            &spec,
            synthesized.netlist(),
            &property,
            &BmcOptions {
                induction: false,
                ..Default::default()
            },
        )
        .unwrap();
        let scratch = check_property(
            &spec,
            synthesized.netlist(),
            &property,
            &BmcOptions {
                induction: false,
                incremental: false,
                ..Default::default()
            },
        )
        .unwrap();
        let inc_cex = incremental.outcome.counterexample().unwrap();
        let scr_cex = scratch.outcome.counterexample().unwrap();
        assert_eq!(inc_cex.length(), scr_cex.length());
    }

    #[test]
    fn every_stall_state_is_escapable() {
        let spec = spec();
        for options in [
            SynthesisOptions::default(),
            SynthesisOptions {
                registered_outputs: true,
                ..Default::default()
            },
        ] {
            let synthesized = synthesize_interlock_with(&spec, options);
            let reports = check_stall_escape(&spec, synthesized.netlist(), 2).unwrap();
            assert_eq!(reports.len(), 6);
            for report in reports {
                assert!(
                    report.escapable,
                    "stage {} stuck in {:?}",
                    report.stage, report.stuck_state
                );
            }
        }
    }

    #[test]
    fn missing_moe_signals_are_reported() {
        let spec = spec();
        let empty = Netlist::new("empty");
        let property = SequentialProperty::for_stage(
            &spec,
            0,
            PropertyKind::Functional,
            Latency::Combinational,
        );
        let err = check_property(&spec, &empty, &property, &BmcOptions::default()).unwrap_err();
        assert!(matches!(err, BmcError::MissingSignals(ref names) if names.len() == 1));
        assert_eq!(missing_moe_signals(&spec, &empty).len(), 6);
        let escape_err = check_stall_escape(&spec, &empty, 2).unwrap_err();
        assert!(matches!(escape_err, BmcError::MissingSignals(_)));
    }
}
