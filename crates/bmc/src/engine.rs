//! The bounded-model-checking and k-induction engine.
//!
//! Following Bryant & German's reduction of processor correctness to
//! propositional SAT, a sequential property over an `ipcl-rtl` netlist is
//! decided by *time-frame unrolling* (see [`ipcl_rtl::unroll`]):
//!
//! * **Falsification (BMC).** Starting from the reset state, frames are
//!   appended one at a time; at each depth the negated property instance of
//!   the newest frame is activated *as a solver assumption* and the
//!   incremental CDCL solver is asked for a model. A model is decoded into a
//!   replayable [`Counterexample`]; because depths are explored in order the
//!   first hit is a minimal-length trace.
//! * **Proof (k-induction).** A second, initial-state-free unrolling asserts
//!   the property for `k` consecutive instances, constrains the path to be
//!   loop-free (pairwise-distinct register states) and asks whether instance
//!   `k+1` can still fail. An UNSAT answer, combined with the base cases
//!   already checked, proves the property for **all** cycles — reset
//!   correctness and "no spurious stall reachable from reset" become
//!   theorems instead of sampled claims.
//!
//! Both unrollings share one [`ipcl_sat::Solver`] each across depths, so
//! learned clauses from depth *d* accelerate depth *d+1*; the
//! `incremental: false` option re-encodes from scratch at every depth and
//! exists to quantify that speedup (see the `bmc` bench and
//! `exp_bmc_depth`).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

use ipcl_core::FunctionalSpec;
use ipcl_expr::{Lit, VarId};
use ipcl_rtl::{InitialState, Netlist, RtlError};
use ipcl_sat::{SatResult, Solver, SolverConfig};
use ipcl_trace::{Heartbeat, MetricSink, Tracer, Value};

use crate::encode::{FrameEncoder, SolverSync};
use crate::property::SequentialProperty;
use crate::trace::Counterexample;

/// Errors reported by the BMC engine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BmcError {
    /// The netlist failed to elaborate.
    Rtl(RtlError),
    /// The netlist does not implement these specification `moe` signals.
    MissingSignals(Vec<String>),
}

impl fmt::Display for BmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BmcError::Rtl(e) => write!(f, "netlist error: {e}"),
            BmcError::MissingSignals(names) => {
                write!(f, "netlist misses moe signals: {}", names.join(", "))
            }
        }
    }
}

impl std::error::Error for BmcError {}

impl From<RtlError> for BmcError {
    fn from(e: RtlError) -> Self {
        BmcError::Rtl(e)
    }
}

/// Knobs of one BMC / k-induction run.
#[derive(Clone, Copy, Debug)]
pub struct BmcOptions {
    /// Maximum unroll depth (frames − 1). `Engine::Bmc { k }` maps here.
    pub max_depth: usize,
    /// Number of leading frames whose inputs are forced to zero. The
    /// post-reset environment of an interlocked pipeline is quiet (the
    /// pipeline is empty, nothing requests), so constraining the first
    /// frame(s) rules out counterfeit "hazard at reset" traces while still
    /// letting bugs that need an event-then-wait pattern surface later.
    pub quiet_cycles: usize,
    /// Reuse one incremental solver across depths (the default). `false`
    /// re-encodes and re-solves from scratch at every depth — kept for the
    /// ablation benchmark.
    pub incremental: bool,
    /// Attempt a k-induction proof after each passed base depth.
    pub induction: bool,
    /// Heuristic configuration of the CDCL solvers (heap decisions,
    /// clause minimization, database reduction, restarts, phase saving —
    /// see [`ipcl_sat::SolverConfig`]). Defaults to the optimized
    /// configuration; [`ipcl_sat::SolverConfig::baseline`] reproduces the
    /// pre-optimization solver for the `exp_solver_opts` ablation.
    pub solver: SolverConfig,
}

impl Default for BmcOptions {
    fn default() -> Self {
        BmcOptions {
            max_depth: 10,
            quiet_cycles: 1,
            incremental: true,
            induction: true,
            solver: SolverConfig::default(),
        }
    }
}

impl BmcOptions {
    /// Options with an explicit depth bound.
    pub fn with_depth(max_depth: usize) -> Self {
        BmcOptions {
            max_depth,
            ..Default::default()
        }
    }
}

/// Aggregate statistics of one property run.
#[derive(Clone, Copy, Debug, Default)]
pub struct BmcStats {
    /// Deepest base frame encoded.
    pub depth_reached: usize,
    /// SAT queries issued (base + induction).
    pub solve_calls: usize,
    /// Clauses in the base unrolling at the end of the run.
    pub base_clauses: usize,
    /// Clauses in the induction unrolling at the end of the run.
    pub induction_clauses: usize,
    /// Conflicts accumulated across both solvers.
    pub conflicts: u64,
    /// Propagations accumulated across both solvers.
    pub propagations: u64,
    /// Conflicts of the **deepest base-case solve alone** (a
    /// [`ipcl_sat::SolverStats::delta`] over the incremental stream, not
    /// the cumulative count).
    pub last_depth_conflicts: u64,
    /// Propagations of the deepest base-case solve alone.
    pub last_depth_propagations: u64,
}

/// The verdict of one property run.
#[derive(Clone, Debug)]
pub enum BmcOutcome {
    /// The property fails; the trace is minimal-length and replayable.
    Falsified(Counterexample),
    /// The property holds on **all** cycles, proved by k-induction at the
    /// given depth.
    Proved {
        /// The `k` at which the inductive step became unsatisfiable.
        induction_depth: usize,
    },
    /// No violation up to `depth_checked`, but no inductive proof either.
    Unknown {
        /// Deepest base case that passed.
        depth_checked: usize,
    },
}

impl BmcOutcome {
    /// Whether the outcome is a proof.
    pub fn is_proved(&self) -> bool {
        matches!(self, BmcOutcome::Proved { .. })
    }

    /// Whether the outcome is a falsification.
    pub fn is_falsified(&self) -> bool {
        matches!(self, BmcOutcome::Falsified(_))
    }

    /// The counterexample, if falsified.
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match self {
            BmcOutcome::Falsified(cex) => Some(cex),
            _ => None,
        }
    }
}

/// Result of checking one property.
#[derive(Clone, Debug)]
pub struct BmcResult {
    /// The property that was checked.
    pub property: SequentialProperty,
    /// The verdict.
    pub outcome: BmcOutcome,
    /// Search statistics.
    pub stats: BmcStats,
}

/// One unrolling (reset-rooted or free) plus its incremental solver and the
/// bookkeeping to push only newly generated clauses. The property/trace
/// plumbing lives in the shared [`FrameEncoder`] (also used by `ipcl-pdr`).
struct Run {
    enc: FrameEncoder,
    solver: Solver,
    sync: SolverSync,
}

impl Run {
    fn new(
        netlist: &Netlist,
        initial: InitialState,
        options: &BmcOptions,
        tracer: &Tracer,
    ) -> Result<Self, RtlError> {
        let enc = FrameEncoder::new(netlist, initial, options.quiet_cycles)?;
        let mut solver =
            Solver::with_config(enc.unroller().cnf().num_vars as usize, options.solver);
        solver.set_tracer(tracer.clone());
        Ok(Run {
            enc,
            solver,
            sync: SolverSync::default(),
        })
    }

    /// Transfers clauses generated since the last sync into the solver.
    fn sync_solver(&mut self) {
        self.sync.sync(&self.enc, &mut self.solver);
    }
}

/// Validates that every `moe` signal the property portfolio mentions exists
/// in the netlist.
pub fn missing_moe_signals(spec: &FunctionalSpec, netlist: &Netlist) -> Vec<String> {
    spec.stages()
        .iter()
        .filter_map(|stage| {
            let name = spec.pool().name_or_fallback(stage.moe);
            match netlist.find(&name) {
                Some(_) => None,
                None => Some(name),
            }
        })
        .collect()
}

/// As [`missing_moe_signals`], restricted to the stage one `property` talks
/// about — the prologue check shared by the BMC and PDR engines.
pub fn missing_property_signals(
    spec: &FunctionalSpec,
    netlist: &Netlist,
    property: &SequentialProperty,
) -> Vec<String> {
    spec.stages()
        .iter()
        .filter(|stage| stage.stage.prefix() == property.stage)
        .filter_map(|stage| {
            let name = spec.pool().name_or_fallback(stage.moe);
            netlist.find(&name).is_none().then_some(name)
        })
        .collect()
}

/// Checks one sequential property on `netlist` against `spec`.
///
/// See the module docs for the algorithm. The returned counterexample (if
/// any) is of minimal length and replays deterministically through
/// [`ipcl_rtl::Simulator`] (asserted by the caller via
/// [`Counterexample::replay`]).
///
/// # Errors
///
/// [`BmcError::MissingSignals`] if the property's stage has no `moe` signal
/// in the netlist; [`BmcError::Rtl`] if the netlist does not elaborate.
pub fn check_property(
    spec: &FunctionalSpec,
    netlist: &Netlist,
    property: &SequentialProperty,
    options: &BmcOptions,
) -> Result<BmcResult, BmcError> {
    check_property_with_cancel(spec, netlist, property, options, None)
}

/// As [`check_property`], but polls `cancel` between depths and returns the
/// current [`BmcOutcome::Unknown`] as soon as it is set — the cooperative
/// cancellation used by `ipcl-pdr`'s portfolio racer to stop the losing
/// engine once the winner has a verdict.
pub fn check_property_with_cancel(
    spec: &FunctionalSpec,
    netlist: &Netlist,
    property: &SequentialProperty,
    options: &BmcOptions,
    cancel: Option<&AtomicBool>,
) -> Result<BmcResult, BmcError> {
    check_property_traced(
        spec,
        netlist,
        property,
        options,
        cancel,
        &Tracer::disabled(),
    )
}

/// As [`check_property_with_cancel`], with an observability handle: the run
/// executes under a `bmc.check` span (encode work under `bmc.encode`, SAT
/// queries under the solver's own `sat.solve`), emits one `bmc_depth` event
/// per explored depth with the per-depth solver-stats delta, and folds the
/// unroller's structural-hashing counters into the tracer's metrics.
pub fn check_property_traced(
    spec: &FunctionalSpec,
    netlist: &Netlist,
    property: &SequentialProperty,
    options: &BmcOptions,
    cancel: Option<&AtomicBool>,
    tracer: &Tracer,
) -> Result<BmcResult, BmcError> {
    let _span = tracer.span("bmc.check");
    let missing = missing_property_signals(spec, netlist, property);
    if !missing.is_empty() {
        return Err(BmcError::MissingSignals(missing));
    }

    let moe_vars: BTreeSet<VarId> = spec.moe_vars().into_iter().collect();
    let mut stats = BmcStats::default();

    // Folds a run's solver totals and its unrolling's structural-hashing
    // counters into the metrics (called once per run on every exit path
    // that owns the run).
    let emit_run = |label: &str, run: &Run| {
        if tracer.is_enabled() {
            run.solver.stats().emit(tracer, "sat");
            let u = run.enc.unroller().stats();
            tracer.counter(&format!("unroll.{label}.frames"), u.frames);
            tracer.counter(&format!("unroll.{label}.gates"), u.gates);
            tracer.counter(&format!("unroll.{label}.cache_hits"), u.cache_hits);
        }
    };

    let mut base = if options.incremental {
        Some(Run::new(netlist, InitialState::Reset, options, tracer)?)
    } else {
        None
    };
    let mut induction: Option<Run> = None;
    // `ok` literals of instances already assumed in the induction unrolling.
    let mut induction_assumed: Vec<Lit> = Vec::new();
    // Live-progress beats, once per depth at most (rate-limited): a deep
    // unrolling announces how far it has come while still running.
    let mut heartbeat = Heartbeat::every_ms(ipcl_sat::HEARTBEAT_MS);

    let first = property.latency.first_instance();
    for moe_frame in first..=options.max_depth.max(first) {
        if cancel.is_some_and(|flag| flag.load(Ordering::Relaxed)) {
            break;
        }
        stats.depth_reached = moe_frame;
        if heartbeat.due(tracer) {
            tracer.event(
                "heartbeat",
                &[
                    ("engine", Value::from("bmc")),
                    ("depth", Value::U64(moe_frame as u64)),
                    ("max_depth", Value::U64(options.max_depth as u64)),
                    ("solve_calls", Value::U64(stats.solve_calls as u64)),
                ],
            );
        }

        // ---- Base case: a reset-rooted violation at exactly this depth?
        let base_result = if let Some(run) = base.as_mut() {
            {
                let _encode = tracer.span("bmc.encode");
                run.enc.ensure_frames(moe_frame + 1);
            }
            let ok = run
                .enc
                .encode_instance(spec, &moe_vars, property, moe_frame);
            run.sync_solver();
            stats.solve_calls += 1;
            let before = run.solver.stats();
            let result = run.solver.solve_under_assumptions(&[ok.negated()]);
            let depth_delta = run.solver.stats().delta(&before);
            stats.last_depth_conflicts = depth_delta.conflicts;
            stats.last_depth_propagations =
                depth_delta.propagations + depth_delta.binary_propagations;
            stats.base_clauses = run.solver.num_clauses();
            result
        } else {
            // From-scratch mode: fresh unrolling and solver per depth.
            let mut run = Run::new(netlist, InitialState::Reset, options, tracer)?;
            {
                let _encode = tracer.span("bmc.encode");
                run.enc.ensure_frames(moe_frame + 1);
            }
            let ok = run
                .enc
                .encode_instance(spec, &moe_vars, property, moe_frame);
            run.enc.unroller_mut().add_clause([ok.negated()]);
            run.sync_solver();
            stats.solve_calls += 1;
            let result = run.solver.solve();
            stats.base_clauses = run.solver.num_clauses();
            let scratch = run.solver.stats();
            stats.conflicts += scratch.conflicts;
            stats.propagations += scratch.propagations;
            // A fresh solver per depth: its totals are the per-depth delta.
            stats.last_depth_conflicts = scratch.conflicts;
            stats.last_depth_propagations = scratch.propagations + scratch.binary_propagations;
            if result.is_sat() {
                base = Some(run); // keep for trace decoding below
            } else {
                emit_run("base", &run);
            }
            result
        };
        tracer.event(
            "bmc_depth",
            &[
                ("depth", Value::U64(moe_frame as u64)),
                ("sat", Value::Bool(base_result.is_sat())),
                ("conflicts", Value::U64(stats.last_depth_conflicts)),
                ("propagations", Value::U64(stats.last_depth_propagations)),
            ],
        );

        if let SatResult::Sat(model) = base_result {
            let run = base.as_ref().expect("sat base run is retained");
            let frames = run.enc.decode_trace(spec, &model, moe_frame + 1);
            let counterexample = Counterexample {
                property: property.name.clone(),
                frames,
                violation_frame: moe_frame,
            };
            // Scratch mode already recorded this solver's stats above.
            if options.incremental {
                if let Some(run) = base {
                    stats.conflicts += run.solver.stats().conflicts;
                    stats.propagations += run.solver.stats().propagations;
                    emit_run("base", &run);
                }
            } else if let Some(run) = base {
                emit_run("base", &run);
            }
            return Ok(BmcResult {
                property: property.clone(),
                outcome: BmcOutcome::Falsified(counterexample),
                stats,
            });
        }

        // ---- Inductive step: k = number of assumed prior instances.
        if options.induction {
            let run = match induction.as_mut() {
                Some(run) => run,
                None => {
                    induction = Some(Run::new(netlist, InitialState::Free, options, tracer)?);
                    induction.as_mut().expect("just created")
                }
            };
            let k = induction_assumed.len();
            let step_frame = first + k;
            {
                let _encode = tracer.span("bmc.encode");
                run.enc.ensure_frames(step_frame + 1);
            }
            // Loop-free path: the new state must differ from all earlier
            // states (no-op for stateless netlists).
            for earlier in 0..step_frame {
                if let Some(diff) = run.enc.unroller_mut().state_difference(earlier, step_frame) {
                    run.enc.unroller_mut().add_clause([diff]);
                }
            }
            let ok = run
                .enc
                .encode_instance(spec, &moe_vars, property, step_frame);
            run.sync_solver();
            stats.solve_calls += 1;
            let result = run.solver.solve_under_assumptions(&[ok.negated()]);
            stats.induction_clauses = run.solver.num_clauses();
            if result == SatResult::Unsat {
                stats.conflicts += run.solver.stats().conflicts;
                stats.propagations += run.solver.stats().propagations;
                emit_run("induction", run);
                if let Some(run) = base {
                    stats.conflicts += run.solver.stats().conflicts;
                    stats.propagations += run.solver.stats().propagations;
                    emit_run("base", &run);
                }
                return Ok(BmcResult {
                    property: property.clone(),
                    outcome: BmcOutcome::Proved { induction_depth: k },
                    stats,
                });
            }
            // The step failed: assume this instance and deepen.
            run.enc.unroller_mut().add_clause([ok]);
            induction_assumed.push(ok);
        }
    }

    if let Some(run) = base {
        stats.conflicts += run.solver.stats().conflicts;
        stats.propagations += run.solver.stats().propagations;
        emit_run("base", &run);
    }
    if let Some(run) = induction {
        stats.conflicts += run.solver.stats().conflicts;
        stats.propagations += run.solver.stats().propagations;
        emit_run("induction", &run);
    }
    Ok(BmcResult {
        property: property.clone(),
        outcome: BmcOutcome::Unknown {
            depth_checked: stats.depth_reached,
        },
        stats,
    })
}

/// Report of a per-stage stall-escape (deadlock/livelock) check.
#[derive(Clone, Debug)]
pub struct StallEscapeReport {
    /// The stage prefix.
    pub stage: String,
    /// `true` when **every** state (reachable or not) in which the stage is
    /// stalled reaches a non-stalled state within `escape_cycles` quiet
    /// cycles — i.e. a stall can always be released by the environment going
    /// idle, so no deadlock or livelock is possible.
    pub escapable: bool,
    /// When not escapable: a register-state valuation from which the stage
    /// stays stalled throughout the window (a *potential* deadlock — it may
    /// or may not be reachable from reset).
    pub stuck_state: Option<BTreeMap<String, bool>>,
}

/// Proves (or refutes) that every stall of every stage is escapable under a
/// quiet environment.
///
/// The check unrolls `escape_cycles + 1` frames from a **free** initial
/// state, forces all inputs low and asks the solver for a path on which the
/// stage's `moe` stays low throughout. UNSAT means even the worst
/// adversarial state un-stalls once the environment goes idle — which in
/// particular proves there is *some* environment input escaping every stall
/// state, the paper's no-deadlock obligation.
///
/// # Errors
///
/// As [`check_property`].
pub fn check_stall_escape(
    spec: &FunctionalSpec,
    netlist: &Netlist,
    escape_cycles: usize,
) -> Result<Vec<StallEscapeReport>, BmcError> {
    let missing = missing_moe_signals(spec, netlist);
    if !missing.is_empty() {
        return Err(BmcError::MissingSignals(missing));
    }
    let escape_cycles = escape_cycles.max(1);

    // One shared unrolling and solver for every stage: the circuit and the
    // quiet-environment constraints are identical across stages, so only the
    // per-stage "stalled throughout" literals vary — exactly the use case of
    // solving under assumptions (learned clauses carry over between stages).
    let mut run = Run::new(
        netlist,
        InitialState::Free,
        &BmcOptions::default(),
        &Tracer::disabled(),
    )?;
    run.enc.ensure_frames(escape_cycles + 1);
    for frame in 0..=escape_cycles {
        for input in run.enc.unroller().netlist().inputs() {
            let lit = run.enc.unroller().lit(frame, input);
            run.enc.unroller_mut().add_clause([lit.negated()]);
        }
    }
    run.sync_solver();

    let mut reports = Vec::new();
    for stage in spec.stages() {
        let name = spec.pool().name_or_fallback(stage.moe);
        let signal = run
            .enc
            .unroller()
            .netlist()
            .find(&name)
            .expect("missing signals checked above");
        // Stalled (¬moe) at every frame of the window.
        let stalled: Vec<Lit> = (0..=escape_cycles)
            .map(|frame| run.enc.unroller().lit(frame, signal).negated())
            .collect();
        let report = match run.solver.solve_under_assumptions(&stalled) {
            SatResult::Unsat => StallEscapeReport {
                stage: stage.stage.prefix(),
                escapable: true,
                stuck_state: None,
            },
            SatResult::Sat(model) => {
                let lit_value = |lit: Lit| model[lit.var() as usize] == lit.is_positive();
                let unroller = run.enc.unroller();
                let stuck = unroller
                    .netlist()
                    .registers()
                    .into_iter()
                    .map(|r| {
                        (
                            unroller.netlist().signal(r).name.clone(),
                            lit_value(unroller.lit(0, r)),
                        )
                    })
                    .collect();
                StallEscapeReport {
                    stage: stage.stage.prefix(),
                    escapable: false,
                    stuck_state: Some(stuck),
                }
            }
        };
        reports.push(report);
    }
    Ok(reports)
}
