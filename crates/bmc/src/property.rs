//! Sequential safety properties over interlock implementations.
//!
//! A [`SequentialProperty`] is an invariant that must hold on every cycle of
//! an execution: an expression over the specification's environment signals
//! and `moe` flags, together with a [`Latency`] telling the checker at which
//! time frame each variable class is sampled. The three property kinds
//! mirror the combinational checker's spec directions (functional /
//! performance / combined, Figures 2 and 3 of the paper), lifted to
//! sequences.

use ipcl_core::FunctionalSpec;
use ipcl_expr::Expr;
use ipcl_rtl::{Netlist, SignalKind};

/// When the implementation's `moe` outputs are sampled relative to the
/// environment inputs that justify them.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Latency {
    /// `moe` and environment are sampled in the same frame — the right model
    /// for combinational interlock implementations, where the outputs react
    /// within the cycle.
    #[default]
    Combinational,
    /// `moe` is sampled one frame after the environment — the right model
    /// for implementations whose `moe` outputs are registered: the flags at
    /// cycle *t+1* answer for the environment of cycle *t*.
    Registered,
}

impl Latency {
    /// Frames between the environment sample and the `moe` sample.
    pub fn offset(self) -> usize {
        match self {
            Latency::Combinational => 0,
            Latency::Registered => 1,
        }
    }

    /// The earliest frame at which a property instance is well-defined.
    pub fn first_instance(self) -> usize {
        self.offset()
    }

    /// Chooses the latency matching `netlist`: [`Latency::Registered`] when
    /// every `moe` output the netlist implements is a register,
    /// [`Latency::Combinational`] otherwise.
    pub fn detect(spec: &FunctionalSpec, netlist: &Netlist) -> Latency {
        let mut saw_register = false;
        for stage in spec.stages() {
            let name = spec.pool().name_or_fallback(stage.moe);
            let Some(signal) = netlist.find(&name) else {
                continue;
            };
            match netlist.signal(signal).kind {
                SignalKind::Register { .. } => saw_register = true,
                _ => return Latency::Combinational,
            }
        }
        if saw_register {
            Latency::Registered
        } else {
            Latency::Combinational
        }
    }
}

/// Which direction of the specification the property asserts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PropertyKind {
    /// `condition → ¬moe`: no missed stalls (safety of the data).
    Functional,
    /// `¬moe → condition`: no unnecessary stalls (the paper's performance
    /// bugs).
    Performance,
    /// `condition ↔ ¬moe`: the maximum-performance behaviour exactly.
    Combined,
}

impl PropertyKind {
    /// All property kinds.
    pub const ALL: [PropertyKind; 3] = [
        PropertyKind::Functional,
        PropertyKind::Performance,
        PropertyKind::Combined,
    ];

    /// Short name used in property identifiers and reports.
    pub fn name(self) -> &'static str {
        match self {
            PropertyKind::Functional => "functional",
            PropertyKind::Performance => "performance",
            PropertyKind::Combined => "combined",
        }
    }
}

/// An every-cycle invariant over one pipeline stage.
#[derive(Clone, Debug)]
pub struct SequentialProperty {
    /// Identifier, e.g. `"long.4/functional"`.
    pub name: String,
    /// The stage prefix the property talks about.
    pub stage: String,
    /// Which spec direction it asserts.
    pub kind: PropertyKind,
    /// The invariant: must evaluate true at every instance. Variables that
    /// are `moe` flags of the specification are sampled at the instance
    /// frame; all other variables (the environment) are sampled
    /// [`Latency::offset`] frames earlier.
    pub ok: Expr,
    /// The sampling discipline.
    pub latency: Latency,
}

impl SequentialProperty {
    /// Builds the property of `kind` for one stage of `spec`.
    pub fn for_stage(
        spec: &FunctionalSpec,
        stage_index: usize,
        kind: PropertyKind,
        latency: Latency,
    ) -> SequentialProperty {
        let stage = &spec.stages()[stage_index];
        let condition = stage.condition();
        let not_moe = Expr::not(Expr::var(stage.moe));
        let ok = match kind {
            PropertyKind::Functional => Expr::implies(condition, not_moe),
            PropertyKind::Performance => Expr::implies(not_moe, condition),
            PropertyKind::Combined => Expr::iff(condition, not_moe),
        };
        SequentialProperty {
            name: format!("{}/{}", stage.stage.prefix(), kind.name()),
            stage: stage.stage.prefix(),
            kind,
            ok,
            latency,
        }
    }

    /// The properties of `kind` for every stage of `spec`.
    pub fn for_spec(
        spec: &FunctionalSpec,
        kind: PropertyKind,
        latency: Latency,
    ) -> Vec<SequentialProperty> {
        (0..spec.stages().len())
            .map(|i| SequentialProperty::for_stage(spec, i, kind, latency))
            .collect()
    }

    /// Functional and performance properties for every stage (the default
    /// portfolio of `check_netlist_sequential`: two one-sided properties per
    /// stage give more precise blame than one combined property).
    pub fn both_directions(spec: &FunctionalSpec, latency: Latency) -> Vec<SequentialProperty> {
        let mut properties = SequentialProperty::for_spec(spec, PropertyKind::Functional, latency);
        properties.extend(SequentialProperty::for_spec(
            spec,
            PropertyKind::Performance,
            latency,
        ));
        properties
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcl_core::example::ExampleArch;
    use ipcl_synth::{synthesize_interlock, synthesize_interlock_with, SynthesisOptions};

    #[test]
    fn properties_cover_every_stage() {
        let spec = ExampleArch::new().functional_spec();
        for kind in PropertyKind::ALL {
            let properties = SequentialProperty::for_spec(&spec, kind, Latency::Combinational);
            assert_eq!(properties.len(), 6);
            assert!(properties.iter().all(|p| p.name.ends_with(kind.name())));
        }
        assert_eq!(
            SequentialProperty::both_directions(&spec, Latency::Combinational).len(),
            12
        );
    }

    #[test]
    fn latency_detection() {
        let spec = ExampleArch::new().functional_spec();
        let combinational = synthesize_interlock(&spec);
        assert_eq!(
            Latency::detect(&spec, combinational.netlist()),
            Latency::Combinational
        );
        let registered = synthesize_interlock_with(
            &spec,
            SynthesisOptions {
                registered_outputs: true,
                ..Default::default()
            },
        );
        assert_eq!(
            Latency::detect(&spec, registered.netlist()),
            Latency::Registered
        );
        assert_eq!(Latency::Combinational.offset(), 0);
        assert_eq!(Latency::Registered.offset(), 1);
        assert_eq!(Latency::Registered.first_instance(), 1);
    }
}
