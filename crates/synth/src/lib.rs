//! Synthesis of interlock control logic from specifications.
//!
//! The paper's "further work" section proposes generating the HDL of the
//! pipeline flow-control logic directly from the functional specification.
//! This crate implements that flow: [`synthesize_interlock`] takes a
//! [`FunctionalSpec`], runs the fixed-point derivation of `ipcl-core`, and
//! emits an `ipcl-rtl` netlist in which every stage's `moe` output computes
//! the closed-form maximum-performance expression over the environment
//! inputs. [`SynthesizedInterlock::to_verilog`] renders it as a Verilog
//! module; `ipcl-checker` can prove it equivalent to the combined
//! specification.
//!
//! # Example
//!
//! ```
//! use ipcl_core::example::ExampleArch;
//! use ipcl_synth::synthesize_interlock;
//!
//! let spec = ExampleArch::new().functional_spec();
//! let synthesized = synthesize_interlock(&spec);
//! assert_eq!(synthesized.moe_outputs().len(), 6);
//! assert!(synthesized.to_verilog().contains("module"));
//! ```

use std::collections::BTreeMap;

use ipcl_core::fixpoint::{derive_symbolic, Derivation};
use ipcl_core::FunctionalSpec;
use ipcl_expr::{simplify::simplify, Expr, VarId};
pub use ipcl_pipesim::BrokenVariant;
use ipcl_rtl::{Netlist, SignalId};

/// Options controlling synthesis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SynthesisOptions {
    /// Register the `moe` outputs (adds one flop per stage). Registered
    /// outputs model the extra pipeline latency real interlocks often have
    /// and make the reset-value experiments meaningful; combinational
    /// outputs (the default) are exactly the derived closed forms.
    pub registered_outputs: bool,
    /// Reset value of the registered outputs. The *correct* value is `true`
    /// (after reset every stage is empty, so everything may move); the
    /// paper reports finding incorrect initialisation values — set `false`
    /// to reproduce that bug class.
    pub reset_value: bool,
    /// Module name of the emitted netlist.
    pub module_name: &'static str,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        SynthesisOptions {
            registered_outputs: false,
            reset_value: true,
            module_name: "ipcl_interlock",
        }
    }
}

/// The result of synthesising an interlock controller.
#[derive(Clone, Debug)]
pub struct SynthesizedInterlock {
    netlist: Netlist,
    derivation: Derivation,
    moe_outputs: BTreeMap<String, SignalId>,
    inputs: BTreeMap<String, SignalId>,
}

impl SynthesizedInterlock {
    /// The synthesised netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The symbolic derivation the netlist implements.
    pub fn derivation(&self) -> &Derivation {
        &self.derivation
    }

    /// The `moe` output signals, keyed by specification signal name
    /// (e.g. `"long.4.moe"`).
    pub fn moe_outputs(&self) -> &BTreeMap<String, SignalId> {
        &self.moe_outputs
    }

    /// The environment input signals, keyed by specification signal name.
    pub fn inputs(&self) -> &BTreeMap<String, SignalId> {
        &self.inputs
    }

    /// Emits the controller as Verilog.
    pub fn to_verilog(&self) -> String {
        self.netlist.to_verilog()
    }
}

/// Synthesises the maximum-performance interlock for `spec` with default
/// options (combinational outputs).
pub fn synthesize_interlock(spec: &FunctionalSpec) -> SynthesizedInterlock {
    synthesize_interlock_with(spec, SynthesisOptions::default())
}

/// Synthesises the maximum-performance interlock with explicit options.
pub fn synthesize_interlock_with(
    spec: &FunctionalSpec,
    options: SynthesisOptions,
) -> SynthesizedInterlock {
    let derivation = derive_symbolic(spec);
    let mut netlist = Netlist::new(options.module_name);
    let pool = spec.pool();

    // One primary input per environment variable referenced by any closed
    // form (plus any the spec mentions, so unused inputs stay visible).
    let mut inputs: BTreeMap<String, SignalId> = BTreeMap::new();
    let mut input_of: BTreeMap<VarId, SignalId> = BTreeMap::new();
    for var in spec.env_vars() {
        let name = pool.name_or_fallback(var);
        let signal = netlist.input(&name);
        inputs.insert(name, signal);
        input_of.insert(var, signal);
    }

    let mut moe_outputs = BTreeMap::new();
    for stage in spec.stages() {
        let name = pool.name_or_fallback(stage.moe);
        let moe_expr = derivation
            .moe_expr(stage.moe)
            .expect("derivation covers every stage")
            .clone();
        let logic = build_expr(&mut netlist, &moe_expr, &input_of, pool, &name);
        let output = if options.registered_outputs {
            let register = netlist.register(&name, options.reset_value);
            netlist
                .connect_register(register, logic)
                .expect("freshly created register");
            register
        } else {
            netlist.buf_gate(&name, logic)
        };
        netlist.mark_output(output);
        moe_outputs.insert(name, output);
    }

    SynthesizedInterlock {
        netlist,
        derivation,
        moe_outputs,
        inputs,
    }
}

/// Synthesises an interlock containing the functional bug described by a
/// `ipcl_pipesim` [`BrokenVariant`] — the netlist-level twin of the
/// simulator's `BrokenInterlock` policy, so the same bug classes the
/// simulation experiments inject can be handed to the sequential property
/// checker (`ipcl-bmc` via `ipcl-checker`):
///
/// * [`BrokenVariant::IgnoreScoreboard`] — scoreboard state
///   (`*.operand_outstanding`, `scb[*]`) is treated as never set, so issue
///   stages miss read-after-write stalls;
/// * [`BrokenVariant::IgnoreCompletionGrant`] — every `*.gnt` input is
///   treated as granted, so completion stages move even when they lost the
///   bus;
/// * [`BrokenVariant::BadResetValues`] — a reset-initialised shift chain
///   forces every `moe` flag high for the first `cycles` cycles regardless
///   of the stall conditions (the paper's incorrect-initialisation bug
///   class), making the bug invisible to purely combinational checks.
///
/// The netlist declares inputs for *all* of `spec`'s environment signals
/// (even those the injected bug ignores), so counterexample traces replay
/// against it directly.
pub fn synthesize_broken_interlock(
    spec: &FunctionalSpec,
    variant: BrokenVariant,
) -> SynthesizedInterlock {
    let derivation = derive_symbolic(spec);
    let pool = spec.pool();
    let module_name = match variant {
        BrokenVariant::IgnoreScoreboard => "ipcl_broken_scoreboard",
        BrokenVariant::IgnoreCompletionGrant => "ipcl_broken_completion",
        BrokenVariant::BadResetValues { .. } => "ipcl_broken_reset",
    };
    let mut netlist = Netlist::new(module_name);

    let mut inputs: BTreeMap<String, SignalId> = BTreeMap::new();
    let mut input_of: BTreeMap<VarId, SignalId> = BTreeMap::new();
    for var in spec.env_vars() {
        let name = pool.name_or_fallback(var);
        let signal = netlist.input(&name);
        inputs.insert(name, signal);
        input_of.insert(var, signal);
    }

    // BadResetValues: a chain of `cycles` registers, all reset to 1 and
    // shifting in 0, whose last element is high for exactly the first
    // `cycles` cycles after reset.
    let force_high = match variant {
        BrokenVariant::BadResetValues { cycles } if cycles > 0 => {
            let mut previous = netlist.constant("force_off", false);
            for i in 0..cycles {
                let register = netlist.register(&format!("force_{i}"), true);
                netlist
                    .connect_register(register, previous)
                    .expect("freshly created register");
                previous = register;
            }
            Some(previous)
        }
        _ => None,
    };

    let mut moe_outputs = BTreeMap::new();
    for stage in spec.stages() {
        let name = pool.name_or_fallback(stage.moe);
        let moe_expr = derivation
            .moe_expr(stage.moe)
            .expect("derivation covers every stage")
            .clone();
        let broken_expr = match variant {
            BrokenVariant::IgnoreScoreboard => moe_expr.substitute(&|v: VarId| {
                let var_name = pool.name_or_fallback(v);
                (var_name.contains("operand_outstanding") || var_name.starts_with("scb["))
                    .then_some(Expr::FALSE)
            }),
            BrokenVariant::IgnoreCompletionGrant => moe_expr.substitute(&|v: VarId| {
                pool.name_or_fallback(v)
                    .ends_with(".gnt")
                    .then_some(Expr::TRUE)
            }),
            BrokenVariant::BadResetValues { .. } => moe_expr,
        };
        let logic = build_expr(
            &mut netlist,
            &simplify(&broken_expr),
            &input_of,
            pool,
            &name,
        );
        let output = match force_high {
            Some(force) => netlist.or_gate(&name, [force, logic]),
            None => netlist.buf_gate(&name, logic),
        };
        netlist.mark_output(output);
        moe_outputs.insert(name, output);
    }

    SynthesizedInterlock {
        netlist,
        derivation,
        moe_outputs,
        inputs,
    }
}

/// Recursively instantiates gates for `expr`.
fn build_expr(
    netlist: &mut Netlist,
    expr: &Expr,
    input_of: &BTreeMap<VarId, SignalId>,
    pool: &ipcl_expr::VarPool,
    prefix: &str,
) -> SignalId {
    match expr {
        Expr::Const(value) => netlist.constant(&format!("{prefix}_const"), *value),
        Expr::Var(v) => *input_of.get(v).unwrap_or_else(|| {
            panic!(
                "closed form references non-input {}",
                pool.name_or_fallback(*v)
            )
        }),
        Expr::Not(e) => {
            let inner = build_expr(netlist, e, input_of, pool, prefix);
            netlist.not_gate(&format!("{prefix}_not"), inner)
        }
        Expr::And(ops) => {
            let signals: Vec<SignalId> = ops
                .iter()
                .map(|op| build_expr(netlist, op, input_of, pool, prefix))
                .collect();
            netlist.and_gate(&format!("{prefix}_and"), signals)
        }
        Expr::Or(ops) => {
            let signals: Vec<SignalId> = ops
                .iter()
                .map(|op| build_expr(netlist, op, input_of, pool, prefix))
                .collect();
            netlist.or_gate(&format!("{prefix}_or"), signals)
        }
        Expr::Xor(l, r) => {
            let l = build_expr(netlist, l, input_of, pool, prefix);
            let r = build_expr(netlist, r, input_of, pool, prefix);
            netlist.xor_gate(&format!("{prefix}_xor"), l, r)
        }
        Expr::Implies(l, r) => {
            let l = build_expr(netlist, l, input_of, pool, prefix);
            let r = build_expr(netlist, r, input_of, pool, prefix);
            let nl = netlist.not_gate(&format!("{prefix}_nimp"), l);
            netlist.or_gate(&format!("{prefix}_imp"), [nl, r])
        }
        Expr::Iff(l, r) => {
            let l = build_expr(netlist, l, input_of, pool, prefix);
            let r = build_expr(netlist, r, input_of, pool, prefix);
            let x = netlist.xor_gate(&format!("{prefix}_xnor_x"), l, r);
            netlist.not_gate(&format!("{prefix}_xnor"), x)
        }
        Expr::Ite(c, t, e) => {
            let c = build_expr(netlist, c, input_of, pool, prefix);
            let t = build_expr(netlist, t, input_of, pool, prefix);
            let e = build_expr(netlist, e, input_of, pool, prefix);
            netlist.mux_gate(&format!("{prefix}_mux"), c, t, e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcl_core::example::ExampleArch;
    use ipcl_core::fixpoint::derive_concrete;
    use ipcl_core::ArchSpec;
    use ipcl_expr::Assignment;
    use ipcl_rtl::Simulator;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn synthesized_netlist_elaborates_and_emits_verilog() {
        let spec = ExampleArch::new().functional_spec();
        let synthesized = synthesize_interlock(&spec);
        assert!(synthesized.netlist().elaborate().is_ok());
        assert_eq!(synthesized.moe_outputs().len(), 6);
        assert_eq!(synthesized.inputs().len(), spec.env_vars().len());
        let verilog = synthesized.to_verilog();
        assert!(verilog.contains("module ipcl_interlock"));
        assert!(verilog.contains("output long_4_moe"));
        assert!(verilog.contains("input op_is_wait"));
    }

    #[test]
    fn combinational_outputs_match_concrete_derivation() {
        let spec = ExampleArch::new().functional_spec();
        let synthesized = synthesize_interlock(&spec);
        let mut sim = Simulator::new(synthesized.netlist()).unwrap();
        let pool = spec.pool();
        let env_vars: Vec<_> = spec.env_vars().into_iter().collect();
        let mut rng = StdRng::seed_from_u64(0xD4C);
        for _ in 0..200 {
            let env: Assignment = env_vars
                .iter()
                .map(|&v| (v, rng.random_bool(0.5)))
                .collect();
            sim.set_inputs(env_vars.iter().map(|&var| {
                let name = pool.name_or_fallback(var);
                (synthesized.inputs()[&name], env.get_or_false(var))
            }));
            let expected = derive_concrete(&spec, &env);
            for stage in spec.stages() {
                let name = pool.name_or_fallback(stage.moe);
                let signal = synthesized.moe_outputs()[&name];
                assert_eq!(
                    sim.value(signal),
                    expected.get(stage.moe).unwrap(),
                    "mismatch on {name}"
                );
            }
        }
    }

    #[test]
    fn registered_outputs_delay_by_one_cycle_and_respect_reset_value() {
        let spec = ExampleArch::new().functional_spec();
        let options = SynthesisOptions {
            registered_outputs: true,
            reset_value: false, // the injected initialisation bug
            ..Default::default()
        };
        let synthesized = synthesize_interlock_with(&spec, options);
        let mut sim = Simulator::new(synthesized.netlist()).unwrap();
        let long4 = synthesized.moe_outputs()["long.4.moe"];
        // Wrong reset value: the stage claims to be stalled out of reset.
        assert!(!sim.value(long4));
        // With a quiet environment the correct value (move) appears after one
        // clock edge.
        sim.step();
        assert!(sim.value(long4));
    }

    #[test]
    fn firepath_like_interlock_synthesizes() {
        let spec = ArchSpec::firepath_like().functional_spec().unwrap();
        let synthesized = synthesize_interlock(&spec);
        assert_eq!(synthesized.moe_outputs().len(), 24);
        assert!(synthesized.netlist().elaborate().is_ok());
        assert!(synthesized.netlist().len() > 100);
    }

    #[test]
    fn broken_variants_synthesize_and_differ_from_correct() {
        let spec = ExampleArch::new().functional_spec();
        let correct = synthesize_interlock(&spec);
        for variant in [
            BrokenVariant::IgnoreScoreboard,
            BrokenVariant::IgnoreCompletionGrant,
            BrokenVariant::BadResetValues { cycles: 2 },
        ] {
            let broken = synthesize_broken_interlock(&spec, variant);
            assert!(broken.netlist().elaborate().is_ok(), "{variant:?}");
            assert_eq!(broken.moe_outputs().len(), 6, "{variant:?}");
            // Inputs cover the full environment even when ignored.
            assert_eq!(broken.inputs().len(), spec.env_vars().len());
            assert_ne!(broken.netlist(), correct.netlist(), "{variant:?}");
        }
    }

    #[test]
    fn bad_reset_forces_moe_high_for_the_configured_cycles() {
        let spec = ExampleArch::new().functional_spec();
        let broken =
            synthesize_broken_interlock(&spec, BrokenVariant::BadResetValues { cycles: 2 });
        let mut sim = Simulator::new(broken.netlist()).unwrap();
        // Raise a stall condition (completion request without grant) that a
        // correct interlock would honour immediately.
        let req = broken.inputs()["long.req"];
        sim.set_input(req, true);
        let long4 = broken.moe_outputs()["long.4.moe"];
        assert!(sim.value(long4), "cycle 0 is forced high");
        sim.step();
        assert!(sim.value(long4), "cycle 1 is still forced high");
        sim.step();
        assert!(!sim.value(long4), "from cycle 2 the stall condition wins");
    }

    #[test]
    fn ignore_completion_grant_never_stalls_on_lost_bus() {
        let spec = ExampleArch::new().functional_spec();
        let broken = synthesize_broken_interlock(&spec, BrokenVariant::IgnoreCompletionGrant);
        let mut sim = Simulator::new(broken.netlist()).unwrap();
        let req = broken.inputs()["long.req"];
        let long4 = broken.moe_outputs()["long.4.moe"];
        sim.set_input(req, true); // request without grant: must stall, does not
        assert!(sim.value(long4));
    }

    #[test]
    fn derivation_is_exposed() {
        let spec = ExampleArch::new().functional_spec();
        let synthesized = synthesize_interlock(&spec);
        assert_eq!(synthesized.derivation().moe.len(), 6);
    }
}
