//! Testbench assertion generation from interlock specifications.
//!
//! The paper's first practical payoff is that the derived performance
//! specification "can be included into a testbench in the form of an
//! assertion". This crate provides both halves of that flow:
//!
//! * [`sva`] renders the functional, performance and combined specifications
//!   as SystemVerilog assertion (SVA) properties and as PSL assertions, ready
//!   to be bound to the RTL signals of the design under verification;
//! * [`monitor`] provides runtime monitors that evaluate the same assertions
//!   over per-cycle signal snapshots — the form used with `ipcl-pipesim`'s
//!   observer hook and with `ipcl-rtl` traces.
//!
//! # Example
//!
//! ```
//! use ipcl_assertgen::{AssertionKind, sva::SvaGenerator};
//! use ipcl_core::example::ExampleArch;
//!
//! let spec = ExampleArch::new().functional_spec();
//! let sva = SvaGenerator::new(&spec).render_module(AssertionKind::Performance);
//! assert!(sva.contains("assert property"));
//! assert!(sva.contains("perf_long_1_moe"));
//! ```

pub mod monitor;
pub mod sva;

pub use monitor::{MonitorReport, SpecMonitor, Violation, ViolationKind};
pub use sva::SvaGenerator;

/// Which direction of the specification an assertion checks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AssertionKind {
    /// `condition → ¬moe`: a violation is a missed stall (functional bug).
    Functional,
    /// `¬moe → condition`: a violation is an unnecessary stall (performance
    /// bug).
    Performance,
    /// `condition ↔ ¬moe`: both directions.
    Combined,
}

impl AssertionKind {
    /// All kinds, in the order the paper introduces them.
    pub const ALL: [AssertionKind; 3] = [
        AssertionKind::Functional,
        AssertionKind::Performance,
        AssertionKind::Combined,
    ];

    /// Short prefix used in generated assertion labels.
    pub fn prefix(self) -> &'static str {
        match self {
            AssertionKind::Functional => "func",
            AssertionKind::Performance => "perf",
            AssertionKind::Combined => "comb",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_prefixes_are_distinct() {
        let prefixes: Vec<&str> = AssertionKind::ALL.iter().map(|k| k.prefix()).collect();
        let mut deduped = prefixes.clone();
        deduped.sort();
        deduped.dedup();
        assert_eq!(deduped.len(), prefixes.len());
    }
}
