//! Runtime monitors evaluating specification assertions over signal
//! snapshots.
//!
//! A [`SpecMonitor`] is the executable form of the testbench assertions: it
//! is attached to a simulation (the observer hook of
//! `ipcl_pipesim::Machine::run_program_with_observer`, or an `ipcl-rtl`
//! trace) and checks, cycle by cycle, the functional direction (missed
//! stalls), the performance direction (unnecessary stalls), or both.

use std::collections::BTreeMap;

use ipcl_core::FunctionalSpec;
use ipcl_expr::Assignment;

use crate::AssertionKind;

/// The kind of violation a monitor reports.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum ViolationKind {
    /// The stall condition held but the stage claimed it could move
    /// (functional bug: hazard).
    MissedStall,
    /// The stage stalled although no stall condition held (performance bug:
    /// unnecessary stall).
    UnnecessaryStall,
}

/// One assertion violation observed during simulation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Violation {
    /// Cycle at which the violation was observed.
    pub cycle: u64,
    /// The `pipe.stage` prefix of the offending stage.
    pub stage: String,
    /// Functional or performance violation.
    pub kind: ViolationKind,
    /// Labels of the stall rules that held at the time (empty for
    /// unnecessary stalls, where by definition no rule held).
    pub active_rules: Vec<String>,
}

/// Aggregated monitoring results.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MonitorReport {
    /// Cycles observed.
    pub cycles: u64,
    /// All recorded violations, in order of occurrence (capped by the
    /// monitor's `max_recorded`).
    pub violations: Vec<Violation>,
    /// Total violation counts per stage and kind (not capped).
    pub counts: BTreeMap<(String, ViolationKind), u64>,
}

impl MonitorReport {
    /// Total number of violations of the given kind.
    pub fn count_of(&self, kind: ViolationKind) -> u64 {
        self.counts
            .iter()
            .filter(|((_, k), _)| *k == kind)
            .map(|(_, c)| c)
            .sum()
    }

    /// Whether no assertion fired.
    pub fn is_clean(&self) -> bool {
        self.counts.is_empty()
    }
}

impl std::fmt::Display for MonitorReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "monitored {} cycles: {} missed stalls, {} unnecessary stalls",
            self.cycles,
            self.count_of(ViolationKind::MissedStall),
            self.count_of(ViolationKind::UnnecessaryStall)
        )?;
        for ((stage, kind), count) in &self.counts {
            writeln!(f, "  {stage}: {kind:?} x{count}")?;
        }
        Ok(())
    }
}

/// A runtime assertion monitor for one specification.
#[derive(Clone, Debug)]
pub struct SpecMonitor {
    spec: FunctionalSpec,
    kind: AssertionKind,
    report: MonitorReport,
    max_recorded: usize,
}

impl SpecMonitor {
    /// Creates a monitor checking assertions of the given kind.
    pub fn new(spec: &FunctionalSpec, kind: AssertionKind) -> Self {
        SpecMonitor {
            spec: spec.clone(),
            kind,
            report: MonitorReport::default(),
            max_recorded: 1_000,
        }
    }

    /// Limits how many individual [`Violation`] records are kept (counts are
    /// always complete).
    pub fn with_max_recorded(mut self, max_recorded: usize) -> Self {
        self.max_recorded = max_recorded;
        self
    }

    /// Checks one cycle: `env` holds the environment signals, `moe` the
    /// implementation's `moe` flags. Returns the violations found this cycle
    /// (also accumulated into the report).
    pub fn check_cycle(&mut self, env: &Assignment, moe: &Assignment) -> Vec<Violation> {
        let cycle = self.report.cycles;
        self.report.cycles += 1;
        let mut found = Vec::new();
        let lookup = |v| moe.get(v).or(env.get(v)).unwrap_or(false);
        for stage in self.spec.stages() {
            let moving = moe.get(stage.moe).unwrap_or(true);
            let condition_holds = stage.condition().eval_with(lookup);
            let functional_violated = condition_holds && moving;
            let performance_violated = !moving && !condition_holds;
            let relevant = match self.kind {
                AssertionKind::Functional => {
                    functional_violated.then_some(ViolationKind::MissedStall)
                }
                AssertionKind::Performance => {
                    performance_violated.then_some(ViolationKind::UnnecessaryStall)
                }
                AssertionKind::Combined => {
                    if functional_violated {
                        Some(ViolationKind::MissedStall)
                    } else if performance_violated {
                        Some(ViolationKind::UnnecessaryStall)
                    } else {
                        None
                    }
                }
            };
            if let Some(kind) = relevant {
                let active_rules = stage
                    .rules
                    .iter()
                    .filter(|r| r.condition.eval_with(lookup))
                    .map(|r| r.label.clone())
                    .collect();
                let violation = Violation {
                    cycle,
                    stage: stage.stage.prefix(),
                    kind,
                    active_rules,
                };
                *self
                    .report
                    .counts
                    .entry((violation.stage.clone(), kind))
                    .or_insert(0) += 1;
                if self.report.violations.len() < self.max_recorded {
                    self.report.violations.push(violation.clone());
                }
                found.push(violation);
            }
        }
        found
    }

    /// The accumulated report.
    pub fn report(&self) -> &MonitorReport {
        &self.report
    }

    /// Consumes the monitor, returning the report.
    pub fn into_report(self) -> MonitorReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcl_core::example::ExampleArch;
    use ipcl_core::fixpoint::derive_concrete;
    use ipcl_core::model::StageRef;

    fn example_env(wait: bool) -> (FunctionalSpec, Assignment) {
        let spec = ExampleArch::new().functional_spec();
        let mut env = Assignment::new();
        if wait {
            env.set(spec.pool().lookup("op_is_wait").unwrap(), true);
        }
        (spec, env)
    }

    #[test]
    fn clean_when_implementation_matches_derivation() {
        let (spec, env) = example_env(true);
        let moe = derive_concrete(&spec, &env);
        let mut monitor = SpecMonitor::new(&spec, AssertionKind::Combined);
        let violations = monitor.check_cycle(&env, &moe);
        assert!(violations.is_empty());
        assert!(monitor.report().is_clean());
        assert_eq!(monitor.report().cycles, 1);
    }

    #[test]
    fn missed_stall_detected_by_functional_monitor() {
        let (spec, env) = example_env(true);
        let mut moe = derive_concrete(&spec, &env);
        // The implementation (incorrectly) lets long.1 move during a wait.
        let long1 = spec.moe_var(&StageRef::new("long", 1)).unwrap();
        moe.set(long1, true);
        let mut functional = SpecMonitor::new(&spec, AssertionKind::Functional);
        let violations = functional.check_cycle(&env, &moe);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].kind, ViolationKind::MissedStall);
        assert_eq!(violations[0].stage, "long.1");
        assert!(violations[0]
            .active_rules
            .contains(&"wait-state".to_owned()));
        // A pure performance monitor does not flag the over-eager stage
        // itself (missed stalls are invisible to it). It may, however, flag
        // the lock-step partner whose stall is now unjustified — which is why
        // the combined monitor is the recommended default.
        let mut performance = SpecMonitor::new(&spec, AssertionKind::Performance);
        let perf_violations = performance.check_cycle(&env, &moe);
        assert!(perf_violations.iter().all(|v| v.stage != "long.1"));
    }

    #[test]
    fn unnecessary_stall_detected_by_performance_monitor() {
        let (spec, env) = example_env(false);
        let mut moe = derive_concrete(&spec, &env);
        // The implementation stalls long.3 although nothing requires it.
        let long3 = spec.moe_var(&StageRef::new("long", 3)).unwrap();
        moe.set(long3, false);
        let mut performance = SpecMonitor::new(&spec, AssertionKind::Performance);
        let violations = performance.check_cycle(&env, &moe);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].kind, ViolationKind::UnnecessaryStall);
        assert_eq!(violations[0].stage, "long.3");
        assert!(violations[0].active_rules.is_empty());
        // The functional monitor does not flag over-stalling.
        let mut functional = SpecMonitor::new(&spec, AssertionKind::Functional);
        assert!(functional.check_cycle(&env, &moe).is_empty());
        // The combined monitor flags it too.
        let mut combined = SpecMonitor::new(&spec, AssertionKind::Combined);
        assert_eq!(combined.check_cycle(&env, &moe).len(), 1);
    }

    #[test]
    fn report_accumulates_counts_beyond_recording_cap() {
        let (spec, env) = example_env(false);
        let mut moe = derive_concrete(&spec, &env);
        let long3 = spec.moe_var(&StageRef::new("long", 3)).unwrap();
        moe.set(long3, false);
        let mut monitor = SpecMonitor::new(&spec, AssertionKind::Performance).with_max_recorded(2);
        for _ in 0..10 {
            monitor.check_cycle(&env, &moe);
        }
        let report = monitor.report();
        assert_eq!(report.cycles, 10);
        assert_eq!(report.violations.len(), 2);
        assert_eq!(report.count_of(ViolationKind::UnnecessaryStall), 10);
        let rendered = report.to_string();
        assert!(rendered.contains("unnecessary stalls"));
        assert!(rendered.contains("long.3"));
        let report = monitor.into_report();
        assert_eq!(report.count_of(ViolationKind::MissedStall), 0);
    }
}
