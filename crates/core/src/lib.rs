//! Interlocked pipeline control specifications and the maximum-performance
//! derivation of Eder & Barrett (DAC 2002).
//!
//! The crate implements the paper's method end to end:
//!
//! 1. A **functional specification** ([`FunctionalSpec`]) is a set of stall
//!    rules, one per pipeline stage: *if this condition holds, the stage's
//!    moving-or-empty (`moe`) flag must be clear*. Conditions are boolean
//!    expressions over environment signals (bus grants, scoreboard state,
//!    wait flags, `rtm` flags) and the `moe` flags of other stages.
//! 2. [`properties`] checks the preconditions of Section 3.1: the all-stalled
//!    assignment satisfies the spec (P1), satisfying assignments are closed
//!    under bitwise disjunction (P2), and each stall condition is monotone in
//!    the negated `moe` flags.
//! 3. [`fixpoint`] derives the unique **most liberal** `moe` assignment by
//!    Kleene iteration — concretely per cycle, or symbolically as a
//!    closed-form expression per stage — and with it the **performance
//!    specification** (`¬moe → condition`, Figure 3) and the **combined
//!    specification** (`condition ↔ ¬moe`).
//! 4. [`example`] reproduces the paper's two-pipe example architecture
//!    (Figures 1–3) literally; [`archspec`] generates functional specs for
//!    arbitrary interlocked pipeline architectures, including the
//!    FirePath-like configuration used by the larger experiments.
//!
//! # Example
//!
//! ```
//! use ipcl_core::example::ExampleArch;
//! use ipcl_core::fixpoint::derive_symbolic;
//!
//! let arch = ExampleArch::new();
//! let spec = arch.functional_spec();
//! // Preconditions of the derivation (Section 3.1 of the paper).
//! let report = ipcl_core::properties::check_preconditions(&spec);
//! assert!(report.all_hold());
//! // The most liberal moe assignment as closed-form expressions.
//! let derived = derive_symbolic(&spec);
//! assert_eq!(derived.moe.len(), 6);
//! ```

pub mod archspec;
pub mod example;
pub mod fixpoint;
pub mod model;
pub mod properties;
pub mod spec;

pub use archspec::{ArchSpec, CompletionBusSpec, PipeSpec};
pub use example::ExampleArch;
pub use fixpoint::{derive_concrete, derive_symbolic, Derivation};
pub use model::{SignalNames, StageRef};
pub use properties::{check_preconditions, PropertyReport};
pub use spec::{FunctionalSpec, FunctionalSpecBuilder, SpecError, StallRule};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_example_runs() {
        let arch = example::ExampleArch::new();
        let spec = arch.functional_spec();
        assert_eq!(spec.stages().len(), 6);
        assert!(check_preconditions(&spec).all_hold());
    }
}
