//! The paper's example architecture (Section 2, Figures 1–3).
//!
//! Two pipes share a fetch/decode/issue stage group operating in lock step:
//! the `long` pipe has stages 1–4 (issue, two execution stages, writeback)
//! and the `short` pipe has stages 1–2 (issue, execution/writeback). The
//! final stages of both pipes complete over one shared completion bus `c`
//! (the `short` pipe has priority). Eight architectural registers are
//! tracked by a scoreboard; an instruction cannot issue while a source or
//! destination register is outstanding and not bypassed from the completion
//! bus. A special `op_is_wait` instruction freezes issue on the `long` pipe.

use ipcl_expr::Expr;

use crate::model::{Operand, SignalNames, StageRef};
use crate::spec::{FunctionalSpec, FunctionalSpecBuilder};

/// How the scoreboard/operand interlock of the issue stages is modelled.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OperandStyle {
    /// One abstract environment signal per pipe
    /// (`"long.1.operand_outstanding"`), matching the shape of Figure 2's
    /// existential quantifier without expanding it. This keeps the
    /// specification small enough for exhaustive analyses.
    #[default]
    Abstract,
    /// Full bit-level expansion of the paper's
    /// `∃ r ∈ SDREG, a ∈ REGADDRESS: p.1.r.regaddr = a ∧ scb[a] ∧ c.regaddr ≠ a`
    /// over the 8 architectural registers (3 address bits), as an RTL
    /// implementation would see it.
    BitLevel,
}

/// The example architecture of the paper (Figure 1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ExampleArch {
    /// Operand-interlock modelling style.
    pub operand_style: OperandStyle,
}

impl ExampleArch {
    /// Number of architectural registers (the paper's `REGADDRESS = {7..0}`).
    pub const REGISTERS: u32 = 8;
    /// Number of register-address bits.
    pub const REGADDR_BITS: u32 = 3;
    /// The completion bus name.
    pub const COMPLETION_BUS: &'static str = "c";

    /// The example architecture with the abstract operand interlock.
    pub fn new() -> Self {
        Self::default()
    }

    /// The example architecture with the bit-level operand interlock.
    pub fn bit_level() -> Self {
        ExampleArch {
            operand_style: OperandStyle::BitLevel,
        }
    }

    /// The `moe` vector order used throughout the paper:
    /// `⟨long.4, long.3, long.2, long.1, short.2, short.1⟩`.
    pub fn stage_order() -> Vec<StageRef> {
        vec![
            StageRef::new("long", 4),
            StageRef::new("long", 3),
            StageRef::new("long", 2),
            StageRef::new("long", 1),
            StageRef::new("short", 2),
            StageRef::new("short", 1),
        ]
    }

    /// The pipes of the architecture with their depths.
    pub fn pipes() -> Vec<(&'static str, u32)> {
        vec![("long", 4), ("short", 2)]
    }

    /// Builds the functional specification of Figure 2.
    ///
    /// Every conjunct of the figure appears as one or more labelled
    /// [`crate::spec::StallRule`]s so that downstream tooling (assertion
    /// generation, stall accounting) can attribute violations to causes.
    pub fn functional_spec(&self) -> FunctionalSpec {
        let mut b = FunctionalSpecBuilder::new();
        for stage in Self::stage_order() {
            b.declare_stage(stage)
                .expect("stage order has no duplicates");
        }

        let long4 = StageRef::new("long", 4);
        let long3 = StageRef::new("long", 3);
        let long2 = StageRef::new("long", 2);
        let long1 = StageRef::new("long", 1);
        let short2 = StageRef::new("short", 2);
        let short1 = StageRef::new("short", 1);

        // Completion stages: stall when requesting the completion bus but not
        // granted (the rtm flag is folded into the request, as in the paper).
        let long_req = b.env(&SignalNames::completion_request("long"));
        let long_gnt = b.env(&SignalNames::completion_grant("long"));
        b.stall_rule(
            &long4,
            "completion-bus-lost",
            Expr::and([long_req, Expr::not(long_gnt)]),
        )
        .expect("long.4 declared");
        let short_req = b.env(&SignalNames::completion_request("short"));
        let short_gnt = b.env(&SignalNames::completion_grant("short"));
        b.stall_rule(
            &short2,
            "completion-bus-lost",
            Expr::and([short_req, Expr::not(short_gnt)]),
        )
        .expect("short.2 declared");

        // Intermediate stages of the long pipe: stall when they want to move
        // and the next stage is stalled (overwrite hazard).
        for stage in [&long3, &long2] {
            let rtm = b.env(&stage.rtm());
            let downstream = b.stalled(&stage.next());
            b.stall_rule(stage, "downstream-stalled", Expr::and([rtm, downstream]))
                .expect("stage declared");
        }

        // Issue stages: back-pressure from the respective issue pipe.
        for stage in [&long1, &short1] {
            let rtm = b.env(&stage.rtm());
            let downstream = b.stalled(&stage.next());
            b.stall_rule(stage, "downstream-stalled", Expr::and([rtm, downstream]))
                .expect("stage declared");
        }

        // Wait state freezes issue on the long pipe.
        let wait = b.env(&SignalNames::wait_state());
        b.stall_rule(&long1, "wait-state", wait)
            .expect("long.1 declared");

        // Lock-step issue: each issue stage stalls when the other does.
        let short1_stalled = b.stalled(&short1);
        b.stall_rule(&long1, "lockstep", short1_stalled)
            .expect("long.1 declared");
        let long1_stalled = b.stalled(&long1);
        b.stall_rule(&short1, "lockstep", long1_stalled)
            .expect("short.1 declared");

        // Scoreboard: an outstanding, non-bypassed source or destination
        // register blocks issue.
        for pipe in ["long", "short"] {
            let stage = StageRef::new(pipe, 1);
            let condition = self.operand_outstanding(&mut b, pipe);
            b.stall_rule(&stage, "scoreboard", condition)
                .expect("issue stage declared");
        }

        b.build().expect("example specification is well-formed")
    }

    /// The operand-outstanding condition of a pipe's issue stage, in the
    /// selected modelling style.
    fn operand_outstanding(&self, b: &mut FunctionalSpecBuilder, pipe: &str) -> Expr {
        match self.operand_style {
            OperandStyle::Abstract => b.env(&SignalNames::operand_outstanding(pipe)),
            OperandStyle::BitLevel => {
                // ∃ r ∈ {src, dst}: ∃ a ∈ 0..8:
                //   p.1.r.regaddr = a ∧ scb[a] ∧ c.regaddr ≠ a
                let mut cases = Vec::new();
                for operand in Operand::ALL {
                    for address in 0..Self::REGISTERS {
                        let operand_matches = Self::address_equals(
                            b,
                            |bit| SignalNames::operand_regaddr_bit(pipe, operand, bit),
                            address,
                        );
                        let scoreboarded = b.env(&SignalNames::scoreboard_bit(address));
                        let bypassed = Self::address_equals(
                            b,
                            |bit| SignalNames::completion_regaddr_bit(Self::COMPLETION_BUS, bit),
                            address,
                        );
                        cases.push(Expr::and([
                            operand_matches,
                            scoreboarded,
                            Expr::not(bypassed),
                        ]));
                    }
                }
                Expr::or(cases)
            }
        }
    }

    /// `signal == address` over [`Self::REGADDR_BITS`] bits.
    fn address_equals(
        b: &mut FunctionalSpecBuilder,
        bit_name: impl Fn(u32) -> String,
        address: u32,
    ) -> Expr {
        Expr::and((0..Self::REGADDR_BITS).map(|bit| {
            let var = b.env(&bit_name(bit));
            if address & (1 << bit) != 0 {
                var
            } else {
                Expr::not(var)
            }
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixpoint::{derive_concrete, derive_symbolic, is_most_liberal};
    use crate::properties::check_preconditions;
    use ipcl_expr::Assignment;

    #[test]
    fn stage_order_matches_figure_2_vector() {
        let order = ExampleArch::stage_order();
        let names: Vec<String> = order.iter().map(StageRef::moe).collect();
        assert_eq!(
            names,
            vec![
                "long.4.moe",
                "long.3.moe",
                "long.2.moe",
                "long.1.moe",
                "short.2.moe",
                "short.1.moe"
            ]
        );
    }

    #[test]
    fn abstract_spec_shape() {
        let spec = ExampleArch::new().functional_spec();
        assert_eq!(spec.stages().len(), 6);
        // Stall-rule counts per stage: long.4:1, long.3:1, long.2:1,
        // long.1: downstream + wait + lockstep + scoreboard = 4,
        // short.2:1, short.1: downstream + lockstep + scoreboard = 3.
        let rule_counts: Vec<usize> = spec.stages().iter().map(|s| s.rules.len()).collect();
        assert_eq!(rule_counts, vec![1, 1, 1, 4, 1, 3]);
        // Environment: req/gnt ×2, rtm ×4 (long.1..3, short.1), wait,
        // operand_outstanding ×2 = 11.
        assert_eq!(spec.env_vars().len(), 11);
        assert!(
            spec.has_cyclic_dependencies(),
            "lock-step couples the issue stages"
        );
    }

    #[test]
    fn bit_level_spec_shape() {
        let spec = ExampleArch::bit_level().functional_spec();
        assert_eq!(spec.stages().len(), 6);
        // Environment: req/gnt ×2 (4), rtm ×4, wait (1), scb[0..8) (8),
        // c.regaddr bits (3), operand address bits 2 pipes × 2 operands × 3
        // bits (12) = 32.
        assert_eq!(spec.env_vars().len(), 32);
    }

    #[test]
    fn preconditions_hold_for_both_styles() {
        assert!(check_preconditions(&ExampleArch::new().functional_spec()).all_hold());
        assert!(check_preconditions(&ExampleArch::bit_level().functional_spec()).all_hold());
    }

    #[test]
    fn figure2_text_contains_every_constraint() {
        let spec = ExampleArch::new().functional_spec();
        let text = spec.to_text();
        assert!(text.contains("long.req & !long.gnt"));
        assert!(text.contains("-> !long.4.moe"));
        assert!(text.contains("op_is_wait"));
        assert!(text.contains("!short.1.moe"));
        assert!(text.contains("-> !short.1.moe"));
        assert!(text.contains("short.req & !short.gnt"));
    }

    #[test]
    fn quiet_machine_runs_at_full_speed() {
        let spec = ExampleArch::new().functional_spec();
        let moe = derive_concrete(&spec, &Assignment::new());
        assert!(moe.iter().all(|(_, value)| value));
    }

    #[test]
    fn wait_state_stalls_both_issue_stages_only() {
        let spec = ExampleArch::new().functional_spec();
        let wait = spec.pool().lookup("op_is_wait").unwrap();
        let env = Assignment::from_pairs([(wait, true)]);
        let moe = derive_concrete(&spec, &env);
        let get = |pipe: &str, stage: u32| {
            moe.get(spec.moe_var(&StageRef::new(pipe, stage)).unwrap())
                .unwrap()
        };
        assert!(!get("long", 1), "wait must stall long issue");
        assert!(!get("short", 1), "lock-step must stall short issue too");
        assert!(get("long", 2));
        assert!(get("long", 3));
        assert!(get("long", 4));
        assert!(get("short", 2));
    }

    #[test]
    fn completion_loss_propagates_only_through_rtm_chain() {
        let spec = ExampleArch::new().functional_spec();
        let pool = spec.pool();
        let env = Assignment::from_pairs([
            (pool.lookup("long.req").unwrap(), true),
            (pool.lookup("long.3.rtm").unwrap(), true),
            (pool.lookup("long.2.rtm").unwrap(), true),
            (pool.lookup("long.1.rtm").unwrap(), true),
        ]);
        let moe = derive_concrete(&spec, &env);
        let get = |pipe: &str, stage: u32| {
            moe.get(spec.moe_var(&StageRef::new(pipe, stage)).unwrap())
                .unwrap()
        };
        assert!(!get("long", 4));
        assert!(!get("long", 3));
        assert!(!get("long", 2));
        assert!(!get("long", 1));
        // Lock-step drags the short issue stage down as well.
        assert!(!get("short", 1));
        // The short completion stage is unaffected.
        assert!(get("short", 2));
        assert!(is_most_liberal(&spec, &env, &moe));
    }

    #[test]
    fn bubble_in_long2_breaks_the_stall_chain() {
        let spec = ExampleArch::new().functional_spec();
        let pool = spec.pool();
        // long.4 loses the bus and long.3 wants to move, but long.2 holds a
        // bubble (rtm clear): issue stages must keep moving.
        let env = Assignment::from_pairs([
            (pool.lookup("long.req").unwrap(), true),
            (pool.lookup("long.3.rtm").unwrap(), true),
            (pool.lookup("long.1.rtm").unwrap(), true),
        ]);
        let moe = derive_concrete(&spec, &env);
        let get = |pipe: &str, stage: u32| {
            moe.get(spec.moe_var(&StageRef::new(pipe, stage)).unwrap())
                .unwrap()
        };
        assert!(!get("long", 4));
        assert!(!get("long", 3));
        assert!(get("long", 2));
        assert!(get("long", 1));
        assert!(get("short", 1));
    }

    #[test]
    fn bit_level_scoreboard_bypass_behaviour() {
        let spec = ExampleArch::bit_level().functional_spec();
        let pool = spec.pool();
        let set_address = |env: &mut Assignment, prefix: &str, value: u32| {
            for bit in 0..ExampleArch::REGADDR_BITS {
                let var = pool.lookup(&format!("{prefix}[{bit}]")).unwrap();
                env.set(var, value & (1 << bit) != 0);
            }
        };
        // Source register 3 of the long pipe is outstanding and *not*
        // bypassed (completion targets register 5): issue must stall.
        let mut env = Assignment::new();
        set_address(&mut env, "long.1.src.regaddr", 3);
        set_address(&mut env, "c.regaddr", 5);
        env.set(pool.lookup("scb[3]").unwrap(), true);
        let moe = derive_concrete(&spec, &env);
        let long1 = spec.moe_var(&StageRef::new("long", 1)).unwrap();
        assert_eq!(moe.get(long1), Some(false));

        // Same situation but the completion bus writes register 3 this cycle:
        // the operand is bypassed, stalling would be a performance bug.
        let mut env = Assignment::new();
        set_address(&mut env, "long.1.src.regaddr", 3);
        set_address(&mut env, "c.regaddr", 3);
        env.set(pool.lookup("scb[3]").unwrap(), true);
        let moe = derive_concrete(&spec, &env);
        assert_eq!(moe.get(long1), Some(true));
    }

    #[test]
    fn symbolic_derivation_of_example_is_stable() {
        let spec = ExampleArch::new().functional_spec();
        let derivation = derive_symbolic(&spec);
        assert_eq!(derivation.moe.len(), 6);
        assert!(derivation.iterations <= 7);
        // Closed forms only mention environment variables.
        let moe_vars = spec.moe_vars();
        for expr in derivation.moe.values() {
            assert!(expr.vars().iter().all(|v| !moe_vars.contains(v)));
        }
    }
}
