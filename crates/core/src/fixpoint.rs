//! Fixed-point derivation of the maximum-performance `moe` assignment.
//!
//! Section 3 of the paper shows that, for a functional specification whose
//! stall conditions are monotone in the negated `moe` flags, there is a unique
//! *most liberal* assignment `MOE` (the one with the fewest stalls), and that
//! it satisfies `MOE[i] = ¬F_i(¬MOE)` — i.e. the combined specification in
//! which every `→` of the functional specification is flipped into `↔`.
//!
//! This module computes that assignment two ways:
//!
//! * [`derive_concrete`] — given concrete environment values, Kleene
//!   iteration on booleans (the form used per cycle by the simulator's
//!   maximal interlock implementation and by the runtime monitors);
//! * [`derive_symbolic`] — iteration on expressions, yielding for every stage
//!   a closed-form expression of its maximally-permissive `moe` flag purely
//!   over environment signals (the form used for synthesis and property
//!   checking).
//!
//! Both iterate the *stalled* view `stalled_i = F_i(stalled)` from all-false
//! upwards; monotonicity guarantees convergence to the least fixed point in
//! at most one pass per stage, and the least stalled-fixed-point is exactly
//! the greatest (most liberal) `moe` assignment.

use std::collections::BTreeMap;

use ipcl_expr::{simplify::simplify, Assignment, Expr, VarId};

use crate::spec::FunctionalSpec;

/// Result of a symbolic derivation.
#[derive(Clone, Debug)]
pub struct Derivation {
    /// For every stage (keyed by its `moe` flag), the closed-form expression
    /// of the maximally-permissive `moe` value over environment variables.
    pub moe: BTreeMap<VarId, Expr>,
    /// For every stage, the closed-form *stall* expression (`¬moe`).
    pub stalled: BTreeMap<VarId, Expr>,
    /// Number of Kleene iterations needed to reach the fixed point.
    pub iterations: usize,
    /// Whether the specification's stage dependency graph had cycles
    /// (lock-step couplings). Cycles are handled by the iteration; the flag
    /// is informational.
    pub had_cycles: bool,
}

impl Derivation {
    /// The derived `moe` expression of a stage's flag.
    pub fn moe_expr(&self, moe_var: VarId) -> Option<&Expr> {
        self.moe.get(&moe_var)
    }

    /// Evaluates the derived assignment under concrete environment values,
    /// returning the `moe` flags.
    pub fn evaluate(&self, env: &Assignment) -> Assignment {
        self.moe
            .iter()
            .map(|(&var, expr)| (var, expr.eval_with(|v| env.get_or_false(v))))
            .collect()
    }
}

/// Derives the most liberal `moe` assignment for concrete environment values.
///
/// Returns an [`Assignment`] of every `moe` flag. Variables not present in
/// `env` read as `false` (hardware reset semantics).
///
/// # Example
///
/// ```
/// use ipcl_core::example::ExampleArch;
/// use ipcl_core::fixpoint::derive_concrete;
/// use ipcl_expr::Assignment;
///
/// let arch = ExampleArch::new();
/// let spec = arch.functional_spec();
/// // Quiet machine: nothing requests, nothing is outstanding -> all stages
/// // are free to move.
/// let moe = derive_concrete(&spec, &Assignment::new());
/// assert!(moe.iter().all(|(_, v)| v));
/// ```
pub fn derive_concrete(spec: &FunctionalSpec, env: &Assignment) -> Assignment {
    let moe_vars = spec.moe_vars();
    // stalled == ¬moe, iterated from all-false (i.e. all moving) upwards.
    let mut stalled: BTreeMap<VarId, bool> = moe_vars.iter().map(|&v| (v, false)).collect();
    // At most one stage can newly stall per iteration, so |stages| + 1 passes
    // always suffice; the loop exits as soon as nothing changes.
    for _ in 0..=moe_vars.len() {
        let mut changed = false;
        for stage in spec.stages() {
            let condition = stage.condition();
            // Conditions mention `moe` variables directly; under the current
            // iterate a moe flag reads as ¬stalled.
            let value = condition.eval_with(|v| {
                if let Some(&s) = stalled.get(&v) {
                    !s
                } else {
                    env.get_or_false(v)
                }
            });
            let entry = stalled.get_mut(&stage.moe).expect("moe var present");
            if value && !*entry {
                *entry = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    stalled.into_iter().map(|(v, s)| (v, !s)).collect()
}

/// Derives closed-form expressions of the most liberal `moe` flags over the
/// environment variables.
///
/// The iteration substitutes, at every step, the previous iterate's stall
/// expressions for the `moe` variables inside every stall condition, and
/// simplifies. For monotone specifications this converges in at most
/// `stages + 1` iterations even in the presence of lock-step cycles.
pub fn derive_symbolic(spec: &FunctionalSpec) -> Derivation {
    let moe_vars = spec.moe_vars();
    let had_cycles = spec.has_cyclic_dependencies();
    // Current iterate: stall expression per moe variable, starting at false
    // ("nothing stalls"), expressed purely over environment variables.
    let mut stalled: BTreeMap<VarId, Expr> = moe_vars.iter().map(|&v| (v, Expr::FALSE)).collect();
    let mut iterations = 0;
    for _ in 0..=moe_vars.len() {
        iterations += 1;
        let mut next: BTreeMap<VarId, Expr> = BTreeMap::new();
        for stage in spec.stages() {
            // F_i with every moe_j replaced by ¬stalled_j^{k}.
            let substituted = stage
                .condition()
                .substitute(&|v| stalled.get(&v).map(|s| Expr::not(s.clone())));
            next.insert(stage.moe, simplify(&substituted));
        }
        if next == stalled {
            break;
        }
        stalled = next;
    }
    let moe = stalled
        .iter()
        .map(|(&v, s)| (v, simplify(&Expr::not(s.clone()))))
        .collect();
    Derivation {
        moe,
        stalled,
        iterations,
        had_cycles,
    }
}

/// Checks, by exhaustive enumeration over the specification's variables, that
/// `candidate` (an assignment of all `moe` flags for a given environment) is
/// the unique maximum among all assignments satisfying the functional spec.
///
/// This is the Section 3.2 maximality statement, used by tests and by the
/// properties experiment. The cost is `2^moe` evaluations per environment; it
/// is intended for specification-sized formulas.
pub fn is_most_liberal(spec: &FunctionalSpec, env: &Assignment, candidate: &Assignment) -> bool {
    let moe_vars = spec.moe_vars();
    let functional = spec.functional_expr();
    assert!(
        moe_vars.len() <= 20,
        "exhaustive maximality check is exponential"
    );
    // The candidate itself must satisfy the functional specification.
    let eval_with_moe = |moe_values: &dyn Fn(VarId) -> bool| {
        functional.eval_with(|v| {
            if moe_vars.contains(&v) {
                moe_values(v)
            } else {
                env.get_or_false(v)
            }
        })
    };
    if !eval_with_moe(&|v| candidate.get_or_false(v)) {
        return false;
    }
    // Every satisfying assignment must be pointwise ≤ the candidate.
    for mask in 0u64..(1 << moe_vars.len()) {
        let value = |v: VarId| {
            let position = moe_vars.iter().position(|&x| x == v).expect("moe var");
            mask & (1 << position) != 0
        };
        if eval_with_moe(&value) {
            let subsumed = moe_vars
                .iter()
                .all(|&v| !value(v) || candidate.get_or_false(v));
            if !subsumed {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::ExampleArch;
    use crate::model::StageRef;
    use crate::spec::FunctionalSpecBuilder;
    use ipcl_expr::semantically_equal;

    fn chain_spec(depth: u32) -> FunctionalSpec {
        // A single pipe of `depth` stages: the last stalls on !gnt, every
        // other stalls when it wants to move and its successor is stalled.
        let mut b = FunctionalSpecBuilder::new();
        for s in (1..=depth).rev() {
            b.declare_stage(StageRef::new("p", s)).unwrap();
        }
        let last = StageRef::new("p", depth);
        b.stall_rule_text(&last, "no-grant", "p.req & !p.gnt")
            .unwrap();
        for s in (1..depth).rev() {
            let stage = StageRef::new("p", s);
            let rtm = b.env(&stage.rtm());
            let downstream = b.stalled(&stage.next());
            b.stall_rule(&stage, "downstream", Expr::and([rtm, downstream]))
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn concrete_quiet_environment_never_stalls() {
        let spec = chain_spec(4);
        let moe = derive_concrete(&spec, &Assignment::new());
        assert_eq!(moe.len(), 4);
        assert!(moe.iter().all(|(_, v)| v));
    }

    #[test]
    fn concrete_stall_propagates_backwards_only_when_rtm() {
        let spec = chain_spec(3);
        let pool = spec.pool();
        let req = pool.lookup("p.req").unwrap();
        let rtm2 = pool.lookup("p.2.rtm").unwrap();
        let rtm1 = pool.lookup("p.1.rtm").unwrap();
        // Completion loses the bus; both upstream stages want to move.
        let env = Assignment::from_pairs([(req, true), (rtm2, true), (rtm1, true)]);
        let moe = derive_concrete(&spec, &env);
        let moe3 = spec.moe_var(&StageRef::new("p", 3)).unwrap();
        let moe2 = spec.moe_var(&StageRef::new("p", 2)).unwrap();
        let moe1 = spec.moe_var(&StageRef::new("p", 1)).unwrap();
        assert_eq!(moe.get(moe3), Some(false));
        assert_eq!(moe.get(moe2), Some(false));
        assert_eq!(moe.get(moe1), Some(false));
        // If stage 2 holds a bubble (rtm clear) the stall must not propagate:
        // stalling stage 1 would be an unnecessary stall.
        let env = Assignment::from_pairs([(req, true), (rtm1, true)]);
        let moe = derive_concrete(&spec, &env);
        assert_eq!(moe.get(moe3), Some(false));
        assert_eq!(moe.get(moe2), Some(true));
        assert_eq!(moe.get(moe1), Some(true));
    }

    #[test]
    fn concrete_result_is_most_liberal() {
        let spec = chain_spec(4);
        let env_vars: Vec<VarId> = spec.env_vars().into_iter().collect();
        // Exhaust all environments (chain of 4 has 5 env vars: req, gnt, 3 rtm).
        for mask in 0u64..(1 << env_vars.len()) {
            let env: Assignment = env_vars
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, mask & (1 << i) != 0))
                .collect();
            let moe = derive_concrete(&spec, &env);
            assert!(
                is_most_liberal(&spec, &env, &moe),
                "not maximal for env mask {mask:b}"
            );
        }
    }

    #[test]
    fn symbolic_matches_concrete_on_all_environments() {
        let spec = chain_spec(3);
        let derivation = derive_symbolic(&spec);
        let env_vars: Vec<VarId> = spec.env_vars().into_iter().collect();
        for mask in 0u64..(1 << env_vars.len()) {
            let env: Assignment = env_vars
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, mask & (1 << i) != 0))
                .collect();
            let concrete = derive_concrete(&spec, &env);
            let symbolic = derivation.evaluate(&env);
            assert_eq!(concrete, symbolic, "env mask {mask:b}");
        }
    }

    #[test]
    fn symbolic_closed_forms_only_mention_environment() {
        let spec = chain_spec(4);
        let derivation = derive_symbolic(&spec);
        let moe_vars = spec.moe_vars();
        for expr in derivation.moe.values() {
            for v in expr.vars() {
                assert!(
                    !moe_vars.contains(&v),
                    "closed form still mentions a moe flag"
                );
            }
        }
        assert!(!derivation.had_cycles);
        assert!(derivation.iterations <= moe_vars.len() + 1);
    }

    #[test]
    fn symbolic_chain_closed_form_is_conjunction_of_back_pressure() {
        // For the 2-stage chain the issue stage's stall is
        // rtm ∧ (req ∧ ¬gnt): spelled out in the paper's discussion.
        let spec = chain_spec(2);
        let derivation = derive_symbolic(&spec);
        let moe1 = spec.moe_var(&StageRef::new("p", 1)).unwrap();
        let mut pool = spec.pool().clone();
        let expected = ipcl_expr::parse_expr("!(p.1.rtm & p.req & !p.gnt)", &mut pool).unwrap();
        assert!(semantically_equal(
            derivation.moe_expr(moe1).unwrap(),
            &expected
        ));
    }

    #[test]
    fn derivation_satisfies_combined_spec() {
        // Substituting the derived stall expressions into the combined spec
        // must yield a tautology over the environment variables: the derived
        // assignment *is* the combined-spec solution.
        for spec in [chain_spec(3), ExampleArch::new().functional_spec()] {
            let derivation = derive_symbolic(&spec);
            let combined = spec.combined_expr();
            let substituted = combined.substitute(&|v| derivation.moe.get(&v).cloned());
            // No moe variables remain; validity over env vars is checked
            // exhaustively (small) or via simplification to true.
            let vars: Vec<VarId> = substituted.vars().into_iter().collect();
            assert!(vars.len() <= 20, "expected a small environment");
            for mask in 0u64..(1 << vars.len()) {
                let holds = substituted.eval_with(|v| {
                    vars.iter()
                        .position(|&x| x == v)
                        .map(|i| mask & (1 << i) != 0)
                        .unwrap_or(false)
                });
                assert!(holds, "combined spec violated for mask {mask:b}");
            }
        }
    }

    #[test]
    fn lockstep_cycle_converges() {
        let arch = ExampleArch::new();
        let spec = arch.functional_spec();
        assert!(spec.has_cyclic_dependencies());
        let derivation = derive_symbolic(&spec);
        assert!(derivation.had_cycles);
        // The two issue stages must derive to the same closed form (they are
        // coupled by lock-step rules in both directions).
        let long1 = spec.moe_var(&StageRef::new("long", 1)).unwrap();
        let short1 = spec.moe_var(&StageRef::new("short", 1)).unwrap();
        assert!(semantically_equal(
            derivation.moe_expr(long1).unwrap(),
            derivation.moe_expr(short1).unwrap()
        ));
    }

    #[test]
    fn evaluate_matches_direct_concrete_derivation_on_example() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let arch = ExampleArch::new();
        let spec = arch.functional_spec();
        let derivation = derive_symbolic(&spec);
        let env_vars: Vec<VarId> = spec.env_vars().into_iter().collect();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let env: Assignment = env_vars
                .iter()
                .map(|&v| (v, rng.random_bool(0.5)))
                .collect();
            assert_eq!(derive_concrete(&spec, &env), derivation.evaluate(&env));
        }
    }
}
