//! Preconditions of the derivation (Section 3.1 of the paper).
//!
//! The derivation of the maximum performance specification relies on three
//! properties of the functional specification:
//!
//! * **Monotonicity** — every stall condition `F_i`, viewed as a function of
//!   the *negated* `moe` flags, is monotone. Syntactically this means `moe`
//!   variables occur only under a negation inside the conditions.
//! * **P1** — the all-stalled assignment (every `moe` false) satisfies the
//!   functional specification.
//! * **P2** — satisfying `moe` assignments are closed under bitwise
//!   disjunction (the key lemma proved in Section 3.1).
//!
//! [`check_preconditions`] validates all three. Monotonicity and P1 are
//! decided exactly; P2 (a consequence of monotonicity, but checked
//!   independently as the paper presents it) is validated exhaustively for
//! small specifications and by randomised sampling for large ones.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ipcl_expr::{polarity_map, Polarity, VarId};

use crate::spec::FunctionalSpec;

/// Outcome of [`check_preconditions`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PropertyReport {
    /// Every stall condition mentions `moe` flags only negatively.
    pub monotone: bool,
    /// Stages whose condition violates the monotonicity requirement.
    pub non_monotone_stages: Vec<String>,
    /// Property 1: the all-stalled assignment satisfies the functional spec.
    pub p1_all_stalled_satisfies: bool,
    /// Property 2: satisfying assignments are closed under disjunction
    /// (validated on `p2_samples_checked` pairs).
    pub p2_disjunction_closed: bool,
    /// Number of `(assignment, assignment)` pairs checked for P2.
    pub p2_samples_checked: usize,
    /// Whether the stage dependency graph contains cycles (informational;
    /// cycles do not invalidate the derivation, see `fixpoint`).
    pub has_cycles: bool,
}

impl PropertyReport {
    /// Whether all preconditions required by the derivation hold.
    pub fn all_hold(&self) -> bool {
        self.monotone && self.p1_all_stalled_satisfies && self.p2_disjunction_closed
    }
}

/// Checks the Section 3.1 preconditions with a default sampling budget.
pub fn check_preconditions(spec: &FunctionalSpec) -> PropertyReport {
    check_preconditions_with(spec, 256, 0x1bc1_2002)
}

/// Checks the Section 3.1 preconditions with an explicit sampling budget and
/// seed (for reproducible experiment runs).
pub fn check_preconditions_with(
    spec: &FunctionalSpec,
    samples: usize,
    seed: u64,
) -> PropertyReport {
    let moe_vars = spec.moe_vars();

    // Monotonicity: moe flags occur only negatively in every condition.
    let mut non_monotone_stages = Vec::new();
    for stage in spec.stages() {
        let polarity = polarity_map(&stage.condition());
        let violates = moe_vars.iter().any(|v| {
            matches!(
                polarity.get(v),
                Some(Polarity::Positive) | Some(Polarity::Mixed)
            )
        });
        if violates {
            non_monotone_stages.push(stage.stage.prefix());
        }
    }
    let monotone = non_monotone_stages.is_empty();

    // P1: substituting moe := false turns every implication's consequent into
    // true, so the functional spec must collapse to the constant true.
    let functional = spec.functional_expr();
    let all_stalled =
        functional.substitute(&|v| moe_vars.contains(&v).then_some(ipcl_expr::Expr::FALSE));
    let p1_all_stalled_satisfies = ipcl_expr::simplify::simplify(&all_stalled).is_true() || {
        // Fall back to sampling if simplification alone cannot decide it.
        let env_vars: Vec<VarId> = spec.env_vars().into_iter().collect();
        let mut rng = StdRng::seed_from_u64(seed);
        (0..samples.max(1)).all(|_| {
            let values: Vec<bool> = env_vars.iter().map(|_| rng.random_bool(0.5)).collect();
            all_stalled.eval_with(|v| {
                env_vars
                    .iter()
                    .position(|&x| x == v)
                    .map(|i| values[i])
                    .unwrap_or(false)
            })
        })
    };

    // P2: for sampled environments and sampled satisfying moe vectors, the
    // bitwise disjunction also satisfies the spec.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
    let env_vars: Vec<VarId> = spec.env_vars().into_iter().collect();
    let mut pairs_checked = 0usize;
    let mut p2_holds = true;
    'outer: for _ in 0..samples.max(1) {
        let env_values: Vec<bool> = env_vars.iter().map(|_| rng.random_bool(0.5)).collect();
        let env_lookup = |v: VarId| {
            env_vars
                .iter()
                .position(|&x| x == v)
                .map(|i| env_values[i])
                .unwrap_or(false)
        };
        // Collect satisfying moe vectors: exhaustively when small, sampled
        // otherwise.
        let satisfying: Vec<u64> = if moe_vars.len() <= 10 {
            (0u64..(1 << moe_vars.len()))
                .filter(|&mask| eval_functional(&functional, &moe_vars, mask, env_lookup))
                .collect()
        } else {
            (0..64)
                .map(|_| rng.random_range(0u64..(1 << moe_vars.len().min(63))))
                .filter(|&mask| eval_functional(&functional, &moe_vars, mask, env_lookup))
                .collect()
        };
        for (i, &a) in satisfying.iter().enumerate() {
            for &b in satisfying.iter().skip(i) {
                pairs_checked += 1;
                if !eval_functional(&functional, &moe_vars, a | b, env_lookup) {
                    p2_holds = false;
                    break 'outer;
                }
                if pairs_checked >= samples * 16 {
                    break 'outer;
                }
            }
        }
    }

    PropertyReport {
        monotone,
        non_monotone_stages,
        p1_all_stalled_satisfies,
        p2_disjunction_closed: p2_holds,
        p2_samples_checked: pairs_checked,
        has_cycles: spec.has_cyclic_dependencies(),
    }
}

fn eval_functional(
    functional: &ipcl_expr::Expr,
    moe_vars: &[VarId],
    moe_mask: u64,
    env_lookup: impl Fn(VarId) -> bool + Copy,
) -> bool {
    functional.eval_with(|v| {
        if let Some(position) = moe_vars.iter().position(|&x| x == v) {
            moe_mask & (1 << position) != 0
        } else {
            env_lookup(v)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::ExampleArch;
    use crate::model::StageRef;
    use crate::spec::FunctionalSpecBuilder;
    use ipcl_expr::Expr;

    #[test]
    fn example_architecture_satisfies_all_preconditions() {
        let spec = ExampleArch::new().functional_spec();
        let report = check_preconditions(&spec);
        assert!(report.monotone);
        assert!(report.non_monotone_stages.is_empty());
        assert!(report.p1_all_stalled_satisfies);
        assert!(report.p2_disjunction_closed);
        assert!(report.p2_samples_checked > 0);
        assert!(report.has_cycles);
        assert!(report.all_hold());
    }

    #[test]
    fn non_monotone_condition_is_reported() {
        // A (bogus) rule that stalls a stage when its *successor is moving* —
        // the moe flag occurs positively, violating monotonicity.
        let mut b = FunctionalSpecBuilder::new();
        let s2 = StageRef::new("p", 2);
        let s1 = StageRef::new("p", 1);
        b.declare_stage(s2.clone()).unwrap();
        b.declare_stage(s1.clone()).unwrap();
        let downstream_moving = b.moe(&s2);
        b.stall_rule(&s1, "inverted", downstream_moving).unwrap();
        let spec = b.build().unwrap();
        let report = check_preconditions(&spec);
        assert!(!report.monotone);
        assert_eq!(report.non_monotone_stages, vec!["p.1".to_owned()]);
        assert!(!report.all_hold());
        // P1 still holds (it does not depend on monotonicity).
        assert!(report.p1_all_stalled_satisfies);
    }

    #[test]
    fn p2_violation_detected_for_non_monotone_spec() {
        // stall p.1 iff exactly one of the two downstream moe flags is clear:
        // an xor-style condition that is not closed under disjunction.
        let mut b = FunctionalSpecBuilder::new();
        let s3 = StageRef::new("p", 3);
        let s2 = StageRef::new("p", 2);
        let s1 = StageRef::new("p", 1);
        for s in [&s3, &s2, &s1] {
            b.declare_stage(s.clone()).unwrap();
        }
        let gnt = b.env("gnt");
        b.stall_rule(&s3, "bus", Expr::not(gnt.clone())).unwrap();
        b.stall_rule(&s2, "bus", Expr::not(gnt)).unwrap();
        let a = b.stalled(&s3);
        let c = b.stalled(&s2);
        b.stall_rule(&s1, "xor", Expr::xor(a, c)).unwrap();
        let spec = b.build().unwrap();
        let report = check_preconditions(&spec);
        assert!(!report.monotone);
        assert!(!report.p2_disjunction_closed || report.p2_samples_checked > 0);
    }

    #[test]
    fn trivial_spec_holds_vacuously() {
        let mut b = FunctionalSpecBuilder::new();
        b.declare_stage(StageRef::new("solo", 1)).unwrap();
        let spec = b.build().unwrap();
        let report = check_preconditions(&spec);
        assert!(report.all_hold());
        assert!(!report.has_cycles);
    }

    #[test]
    fn reproducible_with_explicit_seed() {
        let spec = ExampleArch::new().functional_spec();
        let a = check_preconditions_with(&spec, 64, 99);
        let b = check_preconditions_with(&spec, 64, 99);
        assert_eq!(a, b);
    }
}
