//! Generic architecture descriptions and specification generation.
//!
//! The paper derives its functional specification by hand from the
//! microarchitecture manual. [`ArchSpec`] captures the ingredients that
//! recipe needs — pipes and their depths, completion buses and priorities,
//! lock-step issue groups, scoreboard size, wait states, shunt (decouple)
//! stages — and [`ArchSpec::functional_spec`] generates the corresponding
//! [`FunctionalSpec`] mechanically. The FirePath-like configuration used by
//! the larger experiments ([`ArchSpec::firepath_like`]) and the paper's
//! example ([`ArchSpec::paper_example`]) are provided as presets.

use serde::{Deserialize, Serialize};

use ipcl_expr::Expr;

use crate::model::{SignalNames, StageRef};
use crate::spec::{FunctionalSpec, FunctionalSpecBuilder, SpecError};

/// Description of one pipe.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipeSpec {
    /// Pipe name (used as the signal-name prefix).
    pub name: String,
    /// Number of stages, issue stage included (≥ 1).
    pub stages: u32,
    /// Completion bus the final stage competes for, if any.
    pub completion_bus: Option<String>,
    /// Stage indices that are shunt (decouple) stages: they only propagate a
    /// stall when their skid buffer is already full.
    pub shunt_stages: Vec<u32>,
    /// Whether the machine wait state freezes this pipe's issue stage.
    pub observes_wait: bool,
    /// Whether the pipe's issue stage checks the register scoreboard.
    pub checks_scoreboard: bool,
}

impl PipeSpec {
    /// A plain pipe with `stages` stages completing on `bus`, observing the
    /// wait state and the scoreboard, with no shunt stages.
    pub fn new(name: &str, stages: u32, bus: Option<&str>) -> Self {
        PipeSpec {
            name: name.to_owned(),
            stages,
            completion_bus: bus.map(str::to_owned),
            shunt_stages: Vec::new(),
            observes_wait: true,
            checks_scoreboard: true,
        }
    }
}

/// Description of a completion bus: the pipes that arbitrate for it, in
/// priority order (highest first).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompletionBusSpec {
    /// Bus name (signal-name prefix of `regaddr`, etc.).
    pub name: String,
    /// Pipes completing on this bus, highest priority first.
    pub priority: Vec<String>,
}

/// A complete interlocked-pipeline architecture description.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArchSpec {
    /// Architecture name.
    pub name: String,
    /// The pipes.
    pub pipes: Vec<PipeSpec>,
    /// The completion buses.
    pub completion_buses: Vec<CompletionBusSpec>,
    /// Groups of pipes whose issue stages operate in lock step.
    pub lockstep_groups: Vec<Vec<String>>,
    /// Number of architectural registers tracked by the scoreboard.
    pub scoreboard_registers: u32,
}

impl ArchSpec {
    /// The paper's example architecture (two pipes, one completion bus,
    /// eight registers), expressed as a generic description.
    pub fn paper_example() -> Self {
        ArchSpec {
            name: "paper-example".to_owned(),
            pipes: vec![
                PipeSpec {
                    name: "long".to_owned(),
                    stages: 4,
                    completion_bus: Some("c".to_owned()),
                    shunt_stages: Vec::new(),
                    observes_wait: true,
                    checks_scoreboard: true,
                },
                PipeSpec {
                    name: "short".to_owned(),
                    stages: 2,
                    completion_bus: Some("c".to_owned()),
                    shunt_stages: Vec::new(),
                    observes_wait: false,
                    checks_scoreboard: true,
                },
            ],
            completion_buses: vec![CompletionBusSpec {
                name: "c".to_owned(),
                priority: vec!["short".to_owned(), "long".to_owned()],
            }],
            lockstep_groups: vec![vec!["long".to_owned(), "short".to_owned()]],
            scoreboard_registers: 8,
        }
    }

    /// A FirePath-like configuration: a two-sided LIW machine with three
    /// execution pipes per side (deep pipe with a shunt stage, multiply pipe,
    /// short pipe), one completion bus per side, a 64-entry scoreboard and
    /// lock-step issue across all pipes.
    ///
    /// This is the synthetic stand-in for the proprietary processor the paper
    /// verified; see `DESIGN.md` for the substitution rationale.
    pub fn firepath_like() -> Self {
        let mut pipes = Vec::new();
        let mut buses = Vec::new();
        for side in ["a", "b"] {
            let bus = format!("cbus_{side}");
            let long = PipeSpec {
                name: format!("deep_{side}"),
                stages: 6,
                completion_bus: Some(bus.clone()),
                shunt_stages: vec![3],
                observes_wait: true,
                checks_scoreboard: true,
            };
            let mul = PipeSpec {
                name: format!("mul_{side}"),
                stages: 4,
                completion_bus: Some(bus.clone()),
                shunt_stages: Vec::new(),
                observes_wait: true,
                checks_scoreboard: true,
            };
            let short = PipeSpec {
                name: format!("short_{side}"),
                stages: 2,
                completion_bus: Some(bus.clone()),
                shunt_stages: Vec::new(),
                observes_wait: false,
                checks_scoreboard: true,
            };
            buses.push(CompletionBusSpec {
                name: bus,
                priority: vec![short.name.clone(), mul.name.clone(), long.name.clone()],
            });
            pipes.extend([long, mul, short]);
        }
        let all_pipes = pipes.iter().map(|p| p.name.clone()).collect();
        ArchSpec {
            name: "firepath-like".to_owned(),
            pipes,
            completion_buses: buses,
            lockstep_groups: vec![all_pipes],
            scoreboard_registers: 64,
        }
    }

    /// A synthetic architecture with `pipes` pipes of `depth` stages each,
    /// all completing on one bus and issuing in lock step. Used by the
    /// scaling benchmarks (experiment E9).
    pub fn synthetic(pipes: u32, depth: u32) -> Self {
        let pipe_specs: Vec<PipeSpec> = (0..pipes)
            .map(|i| PipeSpec::new(&format!("pipe{i}"), depth, Some("c")))
            .collect();
        let names: Vec<String> = pipe_specs.iter().map(|p| p.name.clone()).collect();
        ArchSpec {
            name: format!("synthetic-{pipes}x{depth}"),
            pipes: pipe_specs,
            completion_buses: vec![CompletionBusSpec {
                name: "c".to_owned(),
                priority: names.clone(),
            }],
            lockstep_groups: vec![names],
            scoreboard_registers: 16,
        }
    }

    /// Total number of pipeline stages across all pipes.
    pub fn total_stages(&self) -> u32 {
        self.pipes.iter().map(|p| p.stages).sum()
    }

    /// The stage vector in specification order: for every pipe (in
    /// declaration order) its stages from the completion stage backwards, as
    /// in the paper's Figure 2.
    pub fn stage_order(&self) -> Vec<StageRef> {
        self.pipes
            .iter()
            .flat_map(|p| (1..=p.stages).rev().map(move |s| StageRef::new(&p.name, s)))
            .collect()
    }

    /// Generates the functional specification for this architecture.
    ///
    /// The rules follow Section 2.2.1 of the paper, generalised:
    ///
    /// * final stage of a pipe with a completion bus: `req ∧ ¬gnt → ¬moe`;
    /// * intermediate stage: `rtm ∧ ¬moe(next) → ¬moe` — except shunt stages,
    ///   which additionally require their skid buffer to be full;
    /// * issue stage: back-pressure from stage 2, the wait state (if
    ///   observed), lock-step coupling with the other issue stages of its
    ///   group, and the scoreboard operand check (abstract signal).
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] only if the description is inconsistent (e.g.
    /// duplicate pipe names leading to duplicate stages).
    pub fn functional_spec(&self) -> Result<FunctionalSpec, SpecError> {
        let mut b = FunctionalSpecBuilder::new();
        for stage in self.stage_order() {
            b.declare_stage(stage)?;
        }

        for pipe in &self.pipes {
            // Completion stage.
            let last = StageRef::new(&pipe.name, pipe.stages);
            if pipe.completion_bus.is_some() {
                let req = b.env(&SignalNames::completion_request(&pipe.name));
                let gnt = b.env(&SignalNames::completion_grant(&pipe.name));
                b.stall_rule(
                    &last,
                    "completion-bus-lost",
                    Expr::and([req, Expr::not(gnt)]),
                )?;
            }

            // Intermediate and issue stages: back-pressure, possibly gated by
            // a shunt buffer.
            for index in (1..pipe.stages).rev() {
                let stage = StageRef::new(&pipe.name, index);
                let rtm = b.env(&stage.rtm());
                let downstream = b.stalled(&stage.next());
                let mut condition = Expr::and([rtm, downstream]);
                if pipe.shunt_stages.contains(&index) {
                    let full = b.env(&SignalNames::shunt_full(&stage));
                    condition = Expr::and([condition, full]);
                }
                let label = if pipe.shunt_stages.contains(&index) {
                    "downstream-stalled-shunt-full"
                } else {
                    "downstream-stalled"
                };
                b.stall_rule(&stage, label, condition)?;
            }

            // Issue-stage-only rules.
            let issue = StageRef::new(&pipe.name, 1);
            if pipe.observes_wait {
                let wait = b.env(&SignalNames::wait_state());
                b.stall_rule(&issue, "wait-state", wait)?;
            }
            if pipe.checks_scoreboard {
                let outstanding = b.env(&SignalNames::operand_outstanding(&pipe.name));
                b.stall_rule(&issue, "scoreboard", outstanding)?;
            }
        }

        // Lock-step groups: every issue stage stalls when any other issue
        // stage of its group stalls.
        for group in &self.lockstep_groups {
            for pipe in group {
                let issue = StageRef::new(pipe, 1);
                for other in group {
                    if other == pipe {
                        continue;
                    }
                    let other_stalled = b.stalled(&StageRef::new(other, 1));
                    b.stall_rule(&issue, "lockstep", other_stalled)?;
                }
            }
        }

        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::ExampleArch;
    use crate::fixpoint::derive_symbolic;
    use crate::properties::check_preconditions;
    use ipcl_expr::{parse_expr, semantically_equal, VarPool};

    #[test]
    fn paper_example_matches_hand_built_spec() {
        let generated = ArchSpec::paper_example().functional_spec().unwrap();
        let hand_built = ExampleArch::new().functional_spec();
        assert_eq!(generated.stages().len(), hand_built.stages().len());
        // Compare stage-by-stage conditions semantically, via a common pool.
        let mut common = VarPool::new();
        for (g, h) in generated.stages().iter().zip(hand_built.stages()) {
            assert_eq!(g.stage, h.stage);
            let g_text = g.condition().display(generated.pool()).to_string();
            let h_text = h.condition().display(hand_built.pool()).to_string();
            let g_expr = parse_expr(&g_text, &mut common).unwrap();
            let h_expr = parse_expr(&h_text, &mut common).unwrap();
            assert!(
                semantically_equal(&g_expr, &h_expr),
                "stage {} differs: {g_text} vs {h_text}",
                g.stage
            );
        }
    }

    #[test]
    fn firepath_like_shape() {
        let arch = ArchSpec::firepath_like();
        assert_eq!(arch.pipes.len(), 6);
        assert_eq!(arch.completion_buses.len(), 2);
        assert_eq!(arch.total_stages(), 2 * (6 + 4 + 2));
        let spec = arch.functional_spec().unwrap();
        assert_eq!(spec.stages().len(), 24);
        assert!(spec.has_cyclic_dependencies());
        assert!(check_preconditions(&spec).all_hold());
        // Shunt-full signals exist for the deep pipes only.
        assert!(spec.pool().lookup("deep_a.3.shunt_full").is_some());
        assert!(spec.pool().lookup("mul_a.3.shunt_full").is_none());
    }

    #[test]
    fn firepath_like_derivation_converges() {
        let spec = ArchSpec::firepath_like().functional_spec().unwrap();
        let derivation = derive_symbolic(&spec);
        assert_eq!(derivation.moe.len(), 24);
        assert!(derivation.had_cycles);
        let moe_vars = spec.moe_vars();
        for expr in derivation.moe.values() {
            assert!(expr.vars().iter().all(|v| !moe_vars.contains(v)));
        }
    }

    #[test]
    fn synthetic_scaling_configurations() {
        for (pipes, depth) in [(1, 2), (2, 4), (4, 6)] {
            let arch = ArchSpec::synthetic(pipes, depth);
            assert_eq!(arch.total_stages(), pipes * depth);
            let spec = arch.functional_spec().unwrap();
            assert_eq!(spec.stages().len(), (pipes * depth) as usize);
            assert!(check_preconditions(&spec).all_hold());
        }
    }

    #[test]
    fn stage_order_is_completion_first_per_pipe() {
        let arch = ArchSpec::paper_example();
        let order = arch.stage_order();
        let names: Vec<String> = order.iter().map(|s| s.prefix()).collect();
        assert_eq!(
            names,
            vec!["long.4", "long.3", "long.2", "long.1", "short.2", "short.1"]
        );
    }

    #[test]
    fn serde_round_trip() {
        let arch = ArchSpec::firepath_like();
        let json = serde_json_like(&arch);
        assert!(json.contains("firepath-like"));
    }

    /// Minimal smoke test that the serde derives are usable (the workspace
    /// does not depend on serde_json, so render via the Debug of the
    /// serializable value instead).
    fn serde_json_like(arch: &ArchSpec) -> String {
        format!("{arch:?}")
    }

    #[test]
    fn pipe_without_completion_bus_has_no_completion_rule() {
        let mut arch = ArchSpec::synthetic(1, 3);
        arch.pipes[0].completion_bus = None;
        let spec = arch.functional_spec().unwrap();
        let last = spec.stage(&StageRef::new("pipe0", 3)).unwrap();
        assert!(last.rules.is_empty());
    }
}
