//! Functional specifications of pipeline interlock logic and the derived
//! performance / combined specifications.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

use ipcl_expr::{parse_expr, Expr, ParseError, VarId, VarPool};

use crate::model::StageRef;

/// One stalling constraint of a pipeline stage: *if `condition` holds, the
/// stage must not move* (`condition → ¬moe`).
///
/// The label names the cause (`"completion-bus-lost"`, `"scoreboard"`, …) and
/// is carried through to assertion messages and stall accounting.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StallRule {
    /// Human-readable cause of the stall.
    pub label: String,
    /// The stalling condition, over environment signals and other stages'
    /// `moe` flags.
    pub condition: Expr,
}

/// The specification of one pipeline stage: its `moe` flag and the stall
/// rules constraining it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StageSpec {
    /// Which stage this is.
    pub stage: StageRef,
    /// The interned `moe` flag of the stage.
    pub moe: VarId,
    /// Individual stalling constraints; the stage's overall condition is
    /// their disjunction.
    pub rules: Vec<StallRule>,
}

impl StageSpec {
    /// The stage's overall stall condition (disjunction of rule conditions;
    /// `false` when the stage has no rules, i.e. it never needs to stall).
    pub fn condition(&self) -> Expr {
        Expr::or(self.rules.iter().map(|r| r.condition.clone()))
    }
}

/// Errors reported while building a [`FunctionalSpec`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SpecError {
    /// A stall rule was added for a stage that was never declared.
    UnknownStage(String),
    /// A rule condition references the `moe` flag of its own stage.
    SelfReference(String),
    /// A rule condition references a `*.moe` variable that is not the flag of
    /// any declared stage (usually a typo in the stage name).
    UndeclaredMoe(String),
    /// A textual rule failed to parse.
    Parse(ParseError),
    /// The same stage was declared twice.
    DuplicateStage(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnknownStage(s) => write!(f, "stall rule for undeclared stage '{s}'"),
            SpecError::SelfReference(s) => write!(
                f,
                "stall condition of stage '{s}' references its own moe flag"
            ),
            SpecError::UndeclaredMoe(v) => {
                write!(
                    f,
                    "condition references moe flag '{v}' of an undeclared stage"
                )
            }
            SpecError::Parse(e) => write!(f, "condition text: {e}"),
            SpecError::DuplicateStage(s) => write!(f, "stage '{s}' declared twice"),
        }
    }
}

impl std::error::Error for SpecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpecError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for SpecError {
    fn from(e: ParseError) -> Self {
        SpecError::Parse(e)
    }
}

/// A complete functional specification: one [`StageSpec`] per pipeline stage,
/// in the paper's vector order (completion stages first, issue stages last by
/// convention, though any order is accepted).
///
/// Build one with [`FunctionalSpecBuilder`], or use
/// [`crate::example::ExampleArch`] / [`crate::archspec::ArchSpec`].
#[derive(Clone, Debug)]
pub struct FunctionalSpec {
    pool: VarPool,
    stages: Vec<StageSpec>,
    stage_index: HashMap<String, usize>,
}

impl FunctionalSpec {
    /// The per-stage specifications, in declaration (vector) order.
    pub fn stages(&self) -> &[StageSpec] {
        &self.stages
    }

    /// The stage specification for `stage`, if declared.
    pub fn stage(&self, stage: &StageRef) -> Option<&StageSpec> {
        self.stage_index
            .get(&stage.prefix())
            .map(|&i| &self.stages[i])
    }

    /// The `moe` flag of `stage`, if declared.
    pub fn moe_var(&self, stage: &StageRef) -> Option<VarId> {
        self.stage(stage).map(|s| s.moe)
    }

    /// All `moe` flags in vector order.
    pub fn moe_vars(&self) -> Vec<VarId> {
        self.stages.iter().map(|s| s.moe).collect()
    }

    /// Environment variables: every variable mentioned by a stall condition
    /// that is not a `moe` flag (grants, scoreboard bits, `rtm` flags, …).
    pub fn env_vars(&self) -> BTreeSet<VarId> {
        let moe: BTreeSet<VarId> = self.moe_vars().into_iter().collect();
        let mut vars = BTreeSet::new();
        for stage in &self.stages {
            for rule in &stage.rules {
                rule.condition.collect_vars(&mut vars);
            }
        }
        vars.difference(&moe).copied().collect()
    }

    /// The variable pool holding all signal names of this specification.
    pub fn pool(&self) -> &VarPool {
        &self.pool
    }

    /// Mutable access to the pool (e.g. to intern additional monitor signals).
    pub fn pool_mut(&mut self) -> &mut VarPool {
        &mut self.pool
    }

    /// The paper's Figure-2 *functional* specification: the conjunction over
    /// all stages of `condition → ¬moe`.
    pub fn functional_expr(&self) -> Expr {
        Expr::and(self.stages.iter().map(|s| self.functional_implication(s)))
    }

    /// The paper's Figure-3 *maximum performance* specification: the
    /// conjunction over all stages of `¬moe → condition`.
    pub fn performance_expr(&self) -> Expr {
        Expr::and(self.stages.iter().map(|s| self.performance_implication(s)))
    }

    /// The *combined* specification: `condition ↔ ¬moe` for every stage. By
    /// the derivation of Section 3 this characterises the unique most liberal
    /// (maximum performance) interlock behaviour.
    pub fn combined_expr(&self) -> Expr {
        Expr::and(
            self.stages
                .iter()
                .map(|s| Expr::iff(s.condition(), Expr::not(Expr::var(s.moe)))),
        )
    }

    /// The single-stage functional implication `condition → ¬moe`.
    pub fn functional_implication(&self, stage: &StageSpec) -> Expr {
        Expr::implies(stage.condition(), Expr::not(Expr::var(stage.moe)))
    }

    /// The single-stage performance implication `¬moe → condition`.
    pub fn performance_implication(&self, stage: &StageSpec) -> Expr {
        Expr::implies(Expr::not(Expr::var(stage.moe)), stage.condition())
    }

    /// Which stages each stage's condition depends on (through their `moe`
    /// flags). Key and values are indices into [`FunctionalSpec::stages`].
    pub fn stage_dependencies(&self) -> BTreeMap<usize, BTreeSet<usize>> {
        let moe_to_index: HashMap<VarId, usize> = self
            .stages
            .iter()
            .enumerate()
            .map(|(i, s)| (s.moe, i))
            .collect();
        self.stages
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let deps = s
                    .condition()
                    .vars()
                    .into_iter()
                    .filter_map(|v| moe_to_index.get(&v).copied())
                    .collect();
                (i, deps)
            })
            .collect()
    }

    /// Whether the stage dependency graph contains a cycle.
    ///
    /// Lock-step issue groups (the example's `long.1 ↔ short.1` coupling)
    /// create two-cycles; the symbolic fixed point still converges, but the
    /// simple "flip `→` into `↔`" reading of the closed form relies on the
    /// iteration order described in Section 3.2.
    pub fn has_cyclic_dependencies(&self) -> bool {
        self.dependency_cycle().is_some()
    }

    /// A stage cycle in the dependency graph, as indices into
    /// [`FunctionalSpec::stages`], or `None` if the graph is acyclic.
    pub fn dependency_cycle(&self) -> Option<Vec<usize>> {
        let deps = self.stage_dependencies();
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut marks = vec![Mark::White; self.stages.len()];
        let mut path = Vec::new();

        fn visit(
            node: usize,
            deps: &BTreeMap<usize, BTreeSet<usize>>,
            marks: &mut Vec<Mark>,
            path: &mut Vec<usize>,
        ) -> Option<Vec<usize>> {
            marks[node] = Mark::Grey;
            path.push(node);
            for &next in &deps[&node] {
                match marks[next] {
                    Mark::Grey => {
                        let start = path.iter().position(|&n| n == next).unwrap_or(0);
                        return Some(path[start..].to_vec());
                    }
                    Mark::White => {
                        if let Some(cycle) = visit(next, deps, marks, path) {
                            return Some(cycle);
                        }
                    }
                    Mark::Black => {}
                }
            }
            path.pop();
            marks[node] = Mark::Black;
            None
        }

        for node in 0..self.stages.len() {
            if marks[node] == Mark::White {
                if let Some(cycle) = visit(node, &deps, &mut marks, &mut path) {
                    return Some(cycle);
                }
            }
        }
        None
    }

    /// Returns a copy of the specification with one additional stall rule.
    ///
    /// Used by experiments to construct *over-conservative* specifications:
    /// the interlock derived from the augmented specification still satisfies
    /// the original functional specification (it stalls in strictly more
    /// situations), but violates the original performance specification —
    /// i.e. it contains an injected performance bug.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::UnknownStage`] if `stage` is not declared and
    /// [`SpecError::SelfReference`] if `condition` mentions the stage's own
    /// `moe` flag.
    pub fn augmented(
        &self,
        stage: &StageRef,
        label: &str,
        condition: Expr,
    ) -> Result<FunctionalSpec, SpecError> {
        let mut copy = self.clone();
        let index = *copy
            .stage_index
            .get(&stage.prefix())
            .ok_or_else(|| SpecError::UnknownStage(stage.prefix()))?;
        if condition.vars().contains(&copy.stages[index].moe) {
            return Err(SpecError::SelfReference(stage.prefix()));
        }
        copy.stages[index].rules.push(StallRule {
            label: label.to_owned(),
            condition,
        });
        Ok(copy)
    }

    /// Renders the specification in the layout of the paper's Figure 2: one
    /// implication per stage, with the stall condition as a disjunction.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (i, stage) in self.stages.iter().enumerate() {
            let connective = if i == 0 { "  " } else { "∧ " };
            let condition = stage.condition();
            out.push_str(&format!(
                "{connective}({} -> !{})\n",
                condition.display(&self.pool),
                self.pool.name_or_fallback(stage.moe)
            ));
        }
        out
    }

    /// Renders the performance specification (Figure 3 layout).
    pub fn performance_text(&self) -> String {
        let mut out = String::new();
        for (i, stage) in self.stages.iter().enumerate() {
            let connective = if i == 0 { "  " } else { "∧ " };
            out.push_str(&format!(
                "{connective}(!{} -> {})\n",
                self.pool.name_or_fallback(stage.moe),
                stage.condition().display(&self.pool)
            ));
        }
        out
    }
}

/// Builder for [`FunctionalSpec`].
///
/// # Example
///
/// ```
/// use ipcl_core::model::StageRef;
/// use ipcl_core::spec::FunctionalSpecBuilder;
///
/// let mut builder = FunctionalSpecBuilder::new();
/// let stage = StageRef::new("long", 4);
/// builder.declare_stage(stage.clone())?;
/// builder.stall_rule_text(&stage, "completion-bus-lost", "long.req & !long.gnt")?;
/// let spec = builder.build()?;
/// assert_eq!(spec.stages().len(), 1);
/// # Ok::<(), ipcl_core::spec::SpecError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct FunctionalSpecBuilder {
    pool: VarPool,
    stages: Vec<StageSpec>,
    stage_index: HashMap<String, usize>,
}

impl FunctionalSpecBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mutable access to the variable pool (to intern environment signals).
    pub fn pool_mut(&mut self) -> &mut VarPool {
        &mut self.pool
    }

    /// Read access to the variable pool.
    pub fn pool(&self) -> &VarPool {
        &self.pool
    }

    /// Declares a pipeline stage, interning its `moe` flag. Stages appear in
    /// the specification vector in declaration order.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::DuplicateStage`] if the stage was declared before.
    pub fn declare_stage(&mut self, stage: StageRef) -> Result<VarId, SpecError> {
        if self.stage_index.contains_key(&stage.prefix()) {
            return Err(SpecError::DuplicateStage(stage.prefix()));
        }
        let moe = self.pool.var(&stage.moe());
        self.stage_index.insert(stage.prefix(), self.stages.len());
        self.stages.push(StageSpec {
            stage,
            moe,
            rules: Vec::new(),
        });
        Ok(moe)
    }

    /// An expression referencing an environment signal by name.
    pub fn env(&mut self, name: &str) -> Expr {
        Expr::var(self.pool.var(name))
    }

    /// An expression referencing a stage's `moe` flag (the stage need not be
    /// declared yet, but must be by the time [`FunctionalSpecBuilder::build`]
    /// is called).
    pub fn moe(&mut self, stage: &StageRef) -> Expr {
        Expr::var(self.pool.var(&stage.moe()))
    }

    /// Convenience for the ubiquitous `¬moe` ("the downstream stage is
    /// blocking").
    pub fn stalled(&mut self, stage: &StageRef) -> Expr {
        Expr::not(self.moe(stage))
    }

    /// Adds a stall rule for a declared stage.
    ///
    /// # Errors
    ///
    /// * [`SpecError::UnknownStage`] if the stage was not declared.
    /// * [`SpecError::SelfReference`] if the condition mentions the stage's
    ///   own `moe` flag.
    pub fn stall_rule(
        &mut self,
        stage: &StageRef,
        label: &str,
        condition: Expr,
    ) -> Result<&mut Self, SpecError> {
        let index = *self
            .stage_index
            .get(&stage.prefix())
            .ok_or_else(|| SpecError::UnknownStage(stage.prefix()))?;
        if condition.vars().contains(&self.stages[index].moe) {
            return Err(SpecError::SelfReference(stage.prefix()));
        }
        self.stages[index].rules.push(StallRule {
            label: label.to_owned(),
            condition,
        });
        Ok(self)
    }

    /// Adds a stall rule given as specification-language text.
    ///
    /// # Errors
    ///
    /// As [`FunctionalSpecBuilder::stall_rule`], plus [`SpecError::Parse`] if
    /// the text does not parse.
    pub fn stall_rule_text(
        &mut self,
        stage: &StageRef,
        label: &str,
        condition: &str,
    ) -> Result<&mut Self, SpecError> {
        let parsed = parse_expr(condition, &mut self.pool)?;
        self.stall_rule(stage, label, parsed)
    }

    /// Finalises the specification.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::UndeclaredMoe`] if any condition references a
    /// `*.moe` variable that is not the flag of a declared stage.
    pub fn build(self) -> Result<FunctionalSpec, SpecError> {
        let declared: BTreeSet<VarId> = self.stages.iter().map(|s| s.moe).collect();
        for stage in &self.stages {
            for rule in &stage.rules {
                for var in rule.condition.vars() {
                    let name = self.pool.name(var).unwrap_or_default();
                    if name.ends_with(".moe") && !declared.contains(&var) {
                        return Err(SpecError::UndeclaredMoe(name.to_owned()));
                    }
                }
            }
        }
        Ok(FunctionalSpec {
            pool: self.pool,
            stages: self.stages,
            stage_index: self.stage_index,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcl_expr::semantically_equal;

    fn two_stage_spec() -> FunctionalSpec {
        // A miniature pipe: stage 2 completes (stalls when no grant), stage 1
        // stalls when it wants to move and stage 2 is stalled.
        let mut b = FunctionalSpecBuilder::new();
        let s2 = StageRef::new("p", 2);
        let s1 = StageRef::new("p", 1);
        b.declare_stage(s2.clone()).unwrap();
        b.declare_stage(s1.clone()).unwrap();
        b.stall_rule_text(&s2, "no-grant", "p.req & !p.gnt")
            .unwrap();
        let rtm = b.env("p.1.rtm");
        let blocked = b.stalled(&s2);
        b.stall_rule(&s1, "downstream", Expr::and([rtm, blocked]))
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builder_constructs_expected_shape() {
        let spec = two_stage_spec();
        assert_eq!(spec.stages().len(), 2);
        let s2 = spec.stage(&StageRef::new("p", 2)).unwrap();
        assert_eq!(s2.rules.len(), 1);
        assert_eq!(s2.rules[0].label, "no-grant");
        assert_eq!(spec.moe_vars().len(), 2);
        assert_eq!(spec.env_vars().len(), 3); // p.req, p.gnt, p.1.rtm
        assert!(spec.moe_var(&StageRef::new("p", 1)).is_some());
        assert!(spec.moe_var(&StageRef::new("p", 9)).is_none());
    }

    #[test]
    fn functional_performance_combined_relationship() {
        let spec = two_stage_spec();
        let functional = spec.functional_expr();
        let performance = spec.performance_expr();
        let combined = spec.combined_expr();
        // combined == functional ∧ performance
        assert!(semantically_equal(
            &combined,
            &Expr::and([functional.clone(), performance.clone()])
        ));
        // The all-stalled, all-quiet assignment satisfies the functional spec
        // (property P1) but not, in general, the performance spec.
        let all_false = |_: VarId| false;
        assert!(functional.eval_with(all_false));
        assert!(!performance.eval_with(all_false));
    }

    #[test]
    fn per_stage_implications() {
        let spec = two_stage_spec();
        let s2 = spec.stage(&StageRef::new("p", 2)).unwrap();
        let func = spec.functional_implication(s2);
        let perf = spec.performance_implication(s2);
        // func: (req & !gnt) -> !moe ; perf: !moe -> (req & !gnt)
        assert!(matches!(func, Expr::Implies(_, _)));
        assert!(matches!(perf, Expr::Implies(_, _)));
        assert!(!semantically_equal(&func, &perf));
    }

    #[test]
    fn duplicate_stage_rejected() {
        let mut b = FunctionalSpecBuilder::new();
        b.declare_stage(StageRef::new("p", 1)).unwrap();
        assert_eq!(
            b.declare_stage(StageRef::new("p", 1)),
            Err(SpecError::DuplicateStage("p.1".into()))
        );
    }

    #[test]
    fn unknown_stage_rejected() {
        let mut b = FunctionalSpecBuilder::new();
        let err = b
            .stall_rule_text(&StageRef::new("p", 1), "x", "true")
            .unwrap_err();
        assert_eq!(err, SpecError::UnknownStage("p.1".into()));
    }

    #[test]
    fn self_reference_rejected() {
        let mut b = FunctionalSpecBuilder::new();
        let s1 = StageRef::new("p", 1);
        b.declare_stage(s1.clone()).unwrap();
        let own = b.moe(&s1);
        let err = b.stall_rule(&s1, "bad", Expr::not(own)).unwrap_err();
        assert_eq!(err, SpecError::SelfReference("p.1".into()));
    }

    #[test]
    fn undeclared_moe_rejected_at_build() {
        let mut b = FunctionalSpecBuilder::new();
        let s1 = StageRef::new("p", 1);
        b.declare_stage(s1.clone()).unwrap();
        b.stall_rule_text(&s1, "typo", "!q.2.moe").unwrap();
        assert_eq!(
            b.build().unwrap_err(),
            SpecError::UndeclaredMoe("q.2.moe".into())
        );
    }

    #[test]
    fn parse_error_propagates() {
        let mut b = FunctionalSpecBuilder::new();
        let s1 = StageRef::new("p", 1);
        b.declare_stage(s1.clone()).unwrap();
        let err = b.stall_rule_text(&s1, "broken", "a &&& b").unwrap_err();
        assert!(matches!(err, SpecError::Parse(_)));
        assert!(err.to_string().contains("condition text"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn dependencies_and_cycles() {
        let spec = two_stage_spec();
        let deps = spec.stage_dependencies();
        // stage index 1 (p.1) depends on stage index 0 (p.2).
        assert!(deps[&1].contains(&0));
        assert!(deps[&0].is_empty());
        assert!(!spec.has_cyclic_dependencies());
        assert!(spec.dependency_cycle().is_none());

        // Lock-step coupling creates a cycle.
        let mut b = FunctionalSpecBuilder::new();
        let a1 = StageRef::new("a", 1);
        let b1 = StageRef::new("b", 1);
        b.declare_stage(a1.clone()).unwrap();
        b.declare_stage(b1.clone()).unwrap();
        let b_stalled = b.stalled(&b1);
        b.stall_rule(&a1, "lockstep", b_stalled).unwrap();
        let a_stalled = b.stalled(&a1);
        b.stall_rule(&b1, "lockstep", a_stalled).unwrap();
        let cyclic = b.build().unwrap();
        assert!(cyclic.has_cyclic_dependencies());
        let cycle = cyclic.dependency_cycle().unwrap();
        assert_eq!(cycle.len(), 2);
    }

    #[test]
    fn text_rendering_mentions_every_stage() {
        let spec = two_stage_spec();
        let text = spec.to_text();
        assert!(text.contains("-> !p.2.moe"));
        assert!(text.contains("-> !p.1.moe"));
        let perf = spec.performance_text();
        assert!(perf.contains("!p.2.moe ->"));
        assert!(perf.contains("!p.1.moe ->"));
    }

    #[test]
    fn stage_with_no_rules_has_false_condition() {
        let mut b = FunctionalSpecBuilder::new();
        b.declare_stage(StageRef::new("free", 1)).unwrap();
        let spec = b.build().unwrap();
        assert!(spec.stages()[0].condition().is_false());
        // Its functional implication is vacuous (true).
        assert!(spec.functional_expr().is_true());
    }

    #[test]
    fn error_display_variants() {
        for err in [
            SpecError::UnknownStage("p.1".into()),
            SpecError::SelfReference("p.1".into()),
            SpecError::UndeclaredMoe("q.1.moe".into()),
            SpecError::DuplicateStage("p.1".into()),
        ] {
            assert!(!err.to_string().is_empty());
        }
    }
}
