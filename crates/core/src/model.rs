//! Naming model for pipes, stages and their control signals.
//!
//! The paper writes signals as `p.s.moe`, `p.s.rtm`, `p.req`, `p.gnt`,
//! `scb[a]`, `c.regaddr`, `op_is_WAIT`. This module fixes those naming
//! conventions so every crate in the workspace (spec construction, simulator
//! binding, RTL extraction, assertion generation) agrees on the textual name
//! of each signal and therefore on its interned [`ipcl_expr::VarId`].

use std::fmt;

/// A pipeline stage reference: pipe name plus 1-based stage index.
///
/// Stage 1 is the fetch/decode/issue stage; larger indices are deeper in the
/// pipe (the paper's Figure 1 indexes from the issue stage).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StageRef {
    /// Pipe name, e.g. `"long"`.
    pub pipe: String,
    /// 1-based stage index within the pipe.
    pub stage: u32,
}

impl StageRef {
    /// Creates a stage reference.
    pub fn new(pipe: &str, stage: u32) -> Self {
        StageRef {
            pipe: pipe.to_owned(),
            stage,
        }
    }

    /// The canonical `pipe.stage` prefix, e.g. `"long.4"`.
    pub fn prefix(&self) -> String {
        format!("{}.{}", self.pipe, self.stage)
    }

    /// The stage's moving-or-empty flag name, e.g. `"long.4.moe"`.
    pub fn moe(&self) -> String {
        format!("{}.moe", self.prefix())
    }

    /// The stage's require-to-move flag name, e.g. `"long.3.rtm"`.
    pub fn rtm(&self) -> String {
        format!("{}.rtm", self.prefix())
    }

    /// The reference to the next (deeper) stage of the same pipe.
    pub fn next(&self) -> StageRef {
        StageRef::new(&self.pipe, self.stage + 1)
    }

    /// The reference to the previous (shallower) stage, or `None` at stage 1.
    pub fn previous(&self) -> Option<StageRef> {
        (self.stage > 1).then(|| StageRef::new(&self.pipe, self.stage - 1))
    }
}

impl fmt::Display for StageRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.prefix())
    }
}

/// Canonical signal-name constructors shared across the workspace.
///
/// All functions are associated functions of a unit struct so that call sites
/// read as `SignalNames::completion_request("long")`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SignalNames;

impl SignalNames {
    /// Completion-bus request flag of a pipe, `"long.req"`.
    pub fn completion_request(pipe: &str) -> String {
        format!("{pipe}.req")
    }

    /// Completion-bus grant flag of a pipe, `"long.gnt"`.
    pub fn completion_grant(pipe: &str) -> String {
        format!("{pipe}.gnt")
    }

    /// The machine-wide wait-state flag, `"op_is_wait"`.
    pub fn wait_state() -> String {
        "op_is_wait".to_owned()
    }

    /// Scoreboard bit for register address `a`, `"scb[a]"`.
    pub fn scoreboard_bit(register: u32) -> String {
        format!("scb[{register}]")
    }

    /// Bit `bit` of the completion bus target register address of bus `bus`,
    /// `"c.regaddr[bit]"` for the default bus name `c`.
    pub fn completion_regaddr_bit(bus: &str, bit: u32) -> String {
        format!("{bus}.regaddr[{bit}]")
    }

    /// Bit `bit` of the source/destination register address read in the issue
    /// stage of `pipe`, e.g. `"long.1.src.regaddr[0]"`.
    pub fn operand_regaddr_bit(pipe: &str, operand: Operand, bit: u32) -> String {
        format!("{pipe}.1.{operand}.regaddr[{bit}]")
    }

    /// Abstract "some operand of this pipe's issue stage is outstanding"
    /// signal, `"long.1.operand_outstanding"`.
    pub fn operand_outstanding(pipe: &str) -> String {
        format!("{pipe}.1.operand_outstanding")
    }

    /// Occupancy flag of a shunt (decouple) stage, `"long.3.shunt_full"`.
    pub fn shunt_full(stage: &StageRef) -> String {
        format!("{}.shunt_full", stage.prefix())
    }
}

/// Source or destination operand selector (the paper's `SDREG`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Operand {
    /// Source register operand.
    Src,
    /// Destination register operand.
    Dst,
}

impl Operand {
    /// Both operands, in the paper's order.
    pub const ALL: [Operand; 2] = [Operand::Src, Operand::Dst];
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Src => write!(f, "src"),
            Operand::Dst => write!(f, "dst"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_ref_names() {
        let s = StageRef::new("long", 4);
        assert_eq!(s.prefix(), "long.4");
        assert_eq!(s.moe(), "long.4.moe");
        assert_eq!(s.rtm(), "long.4.rtm");
        assert_eq!(s.to_string(), "long.4");
        assert_eq!(s.next(), StageRef::new("long", 5));
        assert_eq!(s.previous(), Some(StageRef::new("long", 3)));
        assert_eq!(StageRef::new("short", 1).previous(), None);
    }

    #[test]
    fn signal_names_match_paper_conventions() {
        assert_eq!(SignalNames::completion_request("long"), "long.req");
        assert_eq!(SignalNames::completion_grant("short"), "short.gnt");
        assert_eq!(SignalNames::wait_state(), "op_is_wait");
        assert_eq!(SignalNames::scoreboard_bit(3), "scb[3]");
        assert_eq!(SignalNames::completion_regaddr_bit("c", 2), "c.regaddr[2]");
        assert_eq!(
            SignalNames::operand_regaddr_bit("long", Operand::Src, 0),
            "long.1.src.regaddr[0]"
        );
        assert_eq!(
            SignalNames::operand_outstanding("short"),
            "short.1.operand_outstanding"
        );
        assert_eq!(
            SignalNames::shunt_full(&StageRef::new("long", 3)),
            "long.3.shunt_full"
        );
    }

    #[test]
    fn operand_display_and_all() {
        assert_eq!(Operand::Src.to_string(), "src");
        assert_eq!(Operand::Dst.to_string(), "dst");
        assert_eq!(Operand::ALL.len(), 2);
    }
}
