//! Boolean expression substrate for interlocked pipeline control specifications.
//!
//! This crate provides the expression language every other `ipcl` crate is built
//! on: a boolean [`Expr`] AST over interned [`VarId`] variables, evaluation under
//! [`Assignment`]s, structural simplification, substitution and cofactoring,
//! polarity/monotonicity analysis, Tseitin CNF conversion and a small textual
//! specification language (parser and pretty printer).
//!
//! The paper's functional specifications are conjunctions of implications
//! `F_i(¬moe) → ¬moe_i` where each `F_i` is built from conjunction and
//! disjunction only, hence *monotone*. The [`polarity`] module provides the
//! syntactic check for this precondition, and [`Expr::eval_with`] is the
//! evaluation primitive the fixed-point engine in `ipcl-core` iterates.
//!
//! # Example
//!
//! ```
//! use ipcl_expr::{Expr, VarPool, Assignment};
//!
//! let mut pool = VarPool::new();
//! let stall = pool.var("long.2.rtm");
//! let blocked = pool.var("long.3.moe");
//! // long.2.rtm ∧ ¬long.3.moe  → the stage must not move
//! let cond = Expr::and([Expr::var(stall), Expr::not(Expr::var(blocked))]);
//!
//! let mut env = Assignment::new();
//! env.set(stall, true);
//! env.set(blocked, false);
//! assert_eq!(cond.eval(&env), Ok(true));
//! ```

pub mod cnf;
pub mod display;
pub mod env;
pub mod expr;
pub mod parser;
pub mod polarity;
pub mod simplify;
pub mod vars;

pub use cnf::{Clause, Cnf, EncodeStats, Lit, TseitinEncoder};
pub use env::{Assignment, EvalError};
pub use expr::{semantically_equal, semantically_implies, Expr};
pub use parser::{parse_expr, ParseError};
pub use polarity::{polarity_map, Polarity};
pub use vars::{VarId, VarPool};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_roundtrip() {
        let mut pool = VarPool::new();
        let e = parse_expr("a & !b -> c | false", &mut pool).unwrap();
        let printed = e.display(&pool).to_string();
        let reparsed = parse_expr(&printed, &mut pool).unwrap();
        assert!(expr::semantically_equal(&e, &reparsed));
    }
}
