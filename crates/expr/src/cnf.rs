//! Conjunctive normal form and the Tseitin encoding.
//!
//! The SAT engine in `ipcl-sat` consumes [`Cnf`] formulas. Validity and
//! implication queries over specification expressions are answered by encoding
//! the *negation* of the query with [`TseitinEncoder`] and checking
//! unsatisfiability.

use std::collections::HashMap;
use std::fmt;

use crate::expr::Expr;
use crate::polarity::Polarity;
use crate::vars::VarId;

/// A literal: a CNF variable index with a sign.
///
/// CNF variables are separate from specification [`VarId`]s because the
/// Tseitin encoding introduces fresh definition variables; the encoder keeps
/// the mapping.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Lit {
    code: u32,
}

impl Lit {
    /// Creates a literal for CNF variable `var` (0-based) with polarity
    /// `positive`.
    pub fn new(var: u32, positive: bool) -> Lit {
        Lit {
            code: var << 1 | u32::from(!positive),
        }
    }

    /// Positive literal of `var`.
    pub fn positive(var: u32) -> Lit {
        Lit::new(var, true)
    }

    /// Negative literal of `var`.
    pub fn negative(var: u32) -> Lit {
        Lit::new(var, false)
    }

    /// The CNF variable index.
    pub fn var(self) -> u32 {
        self.code >> 1
    }

    /// Whether the literal is positive.
    pub fn is_positive(self) -> bool {
        self.code & 1 == 0
    }

    /// The complementary literal.
    pub fn negated(self) -> Lit {
        Lit {
            code: self.code ^ 1,
        }
    }

    /// Dense code useful for indexing watch lists (`2*var + sign`).
    pub fn code(self) -> usize {
        self.code as usize
    }

    /// Evaluates the literal under a total valuation of CNF variables.
    pub fn eval(self, value_of: impl Fn(u32) -> bool) -> bool {
        value_of(self.var()) == self.is_positive()
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "x{}", self.var())
        } else {
            write!(f, "-x{}", self.var())
        }
    }
}

/// A clause: a disjunction of literals.
pub type Clause = Vec<Lit>;

/// A formula in conjunctive normal form.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cnf {
    /// Number of CNF variables; all literals reference variables below this.
    pub num_vars: u32,
    /// The clauses. An empty clause makes the formula unsatisfiable.
    pub clauses: Vec<Clause>,
}

impl Cnf {
    /// Creates an empty (trivially satisfiable) formula over `num_vars`
    /// variables.
    pub fn new(num_vars: u32) -> Cnf {
        Cnf {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Allocates a fresh CNF variable and returns its index.
    pub fn fresh_var(&mut self) -> u32 {
        let v = self.num_vars;
        self.num_vars += 1;
        v
    }

    /// Adds a clause. Literals referencing unknown variables grow the
    /// variable count.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, literals: I) {
        let clause: Clause = literals.into_iter().collect();
        for lit in &clause {
            if lit.var() >= self.num_vars {
                self.num_vars = lit.var() + 1;
            }
        }
        self.clauses.push(clause);
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether the formula has no clauses.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Evaluates the formula under a total valuation.
    pub fn eval(&self, value_of: impl Fn(u32) -> bool + Copy) -> bool {
        self.clauses
            .iter()
            .all(|clause| clause.iter().any(|lit| lit.eval(value_of)))
    }

    /// Renders the formula in DIMACS format.
    pub fn to_dimacs(&self) -> String {
        let mut out = format!("p cnf {} {}\n", self.num_vars, self.clauses.len());
        for clause in &self.clauses {
            for lit in clause {
                let v = lit.var() as i64 + 1;
                let signed = if lit.is_positive() { v } else { -v };
                out.push_str(&signed.to_string());
                out.push(' ');
            }
            out.push_str("0\n");
        }
        out
    }
}

/// Needed encoding directions of a gate, as a bitmask: [`POS`] are the
/// `g → f` clauses (sound where the subformula occurs positively),
/// [`NEG`] the `f → g` clauses (negative occurrences).
const POS: u8 = 0b01;
const NEG: u8 = 0b10;
const BOTH: u8 = POS | NEG;

fn flip(need: u8) -> u8 {
    ((need & POS) << 1) | ((need & NEG) >> 1)
}

fn polarity_mask(polarity: Polarity) -> u8 {
    match polarity {
        Polarity::Positive => POS,
        Polarity::Negative => NEG,
        Polarity::Mixed => BOTH,
    }
}

/// A hash-consed gate: its definition literal and the directions whose
/// clauses have been emitted so far.
#[derive(Clone, Copy, Debug)]
struct GateEntry {
    lit: Lit,
    emitted: u8,
}

/// Structural-hashing effectiveness counters of a [`TseitinEncoder`]
/// (shared-gate reuse is the encoder's whole performance story, so the
/// observability layer surfaces these as `encode.*` metrics).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct EncodeStats {
    /// Distinct gates allocated (cache misses).
    pub gates: u64,
    /// Gate lookups answered from the structural-hashing cache.
    pub cache_hits: u64,
}

/// Cache key of a gate: its connective over the *already-encoded child
/// literals* (bottom-up hash-consing). Keying on child literals instead
/// of on subexpression trees keeps every cache probe O(arity) — no deep
/// clones, no repeated subtree hashing — and shares gates even across
/// structurally different spellings that encode to the same operands
/// (associativity-flattened or reordered conjunctions, say).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum GateKey {
    Const(bool),
    /// Sorted, deduplicated operands.
    And(Vec<Lit>),
    /// Sorted, deduplicated operands.
    Or(Vec<Lit>),
    Implies(Lit, Lit),
    /// Operands normalized by literal order (commutative).
    Iff(Lit, Lit),
    /// Operands normalized by literal order (commutative).
    Xor(Lit, Lit),
    Ite(Lit, Lit, Lit),
}

/// Tseitin encoder translating [`Expr`]s into [`Cnf`] with a stable mapping
/// from specification variables to CNF variables.
///
/// The encoder performs **structural hashing**: every distinct subterm is
/// encoded once and shared (a hash-consed subterm → literal cache), so
/// repeated subformulas — ubiquitous in interlock specifications, where the
/// same stall conditions appear in several rules — cost no duplicate
/// definitional clauses.
///
/// Two encoding disciplines are offered:
///
/// * [`TseitinEncoder::encode`] emits the full biconditional definition of
///   every gate, so the returned literal may be used with either sign;
/// * [`TseitinEncoder::encode_with_polarity`] /
///   [`TseitinEncoder::assert_expr`] perform the polarity-aware
///   **Plaisted–Greenbaum** encoding, emitting only the implication
///   direction each occurrence needs (per the same occurrence-polarity
///   notion as [`crate::polarity`]) — roughly half the definitional
///   clauses for and/or-heavy formulas, equisatisfiable as long as the
///   returned literal is only used with the declared polarity.
///
/// # Example
///
/// ```
/// use ipcl_expr::{parse_expr, TseitinEncoder, VarPool};
///
/// let mut pool = VarPool::new();
/// let e = parse_expr("a & !a", &mut pool)?;
/// let mut enc = TseitinEncoder::new();
/// let root = enc.encode(&e);
/// enc.assert_literal(root);
/// // The encoded formula is unsatisfiable because `a & !a` is.
/// assert!(enc.cnf().clauses.len() >= 3);
/// # Ok::<(), ipcl_expr::ParseError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct TseitinEncoder {
    cnf: Cnf,
    var_map: std::collections::BTreeMap<VarId, u32>,
    /// Hash-consed gate cache, keyed on connective + child literals
    /// (gate nodes and constants only; variables go through `var_map`).
    cache: HashMap<GateKey, GateEntry>,
    stats: EncodeStats,
}

impl TseitinEncoder {
    /// Creates an encoder with an empty formula.
    pub fn new() -> Self {
        Self::default()
    }

    /// The CNF variable representing specification variable `var`,
    /// allocating one on first use.
    pub fn cnf_var(&mut self, var: VarId) -> u32 {
        if let Some(&v) = self.var_map.get(&var) {
            return v;
        }
        let v = self.cnf.fresh_var();
        self.var_map.insert(var, v);
        v
    }

    /// The mapping from specification variables to CNF variables built so far.
    pub fn var_map(&self) -> &std::collections::BTreeMap<VarId, u32> {
        &self.var_map
    }

    /// Encodes `expr`, returning the literal that is true iff the expression
    /// is true. Clauses defining intermediate gates are added to the formula;
    /// structurally identical subterms share one definition. The literal
    /// carries the full biconditional definition, so it may be asserted,
    /// negated or assumed freely.
    pub fn encode(&mut self, expr: &Expr) -> Lit {
        self.ensure(expr, BOTH)
    }

    /// Plaisted–Greenbaum: encodes `expr` for occurrences of the given
    /// `polarity` only. The returned literal is sound *only* under that
    /// polarity — e.g. after `encode_with_polarity(e, Polarity::Positive)`
    /// the literal may be asserted or assumed true (forcing `e`), but its
    /// negation is unconstrained. Use [`Polarity::Mixed`] (or
    /// [`TseitinEncoder::encode`]) when both signs are needed.
    pub fn encode_with_polarity(&mut self, expr: &Expr, polarity: Polarity) -> Lit {
        self.ensure(expr, polarity_mask(polarity))
    }

    /// Asserts `expr` with the positive-polarity Plaisted–Greenbaum
    /// encoding: the standard satisfiability query, at roughly half the
    /// definitional clauses of the full Tseitin encoding.
    pub fn assert_expr(&mut self, expr: &Expr) {
        let root = self.encode_with_polarity(expr, Polarity::Positive);
        self.assert_literal(root);
    }

    /// Adds a unit clause forcing `lit` to be true.
    pub fn assert_literal(&mut self, lit: Lit) {
        self.cnf.add_clause([lit]);
    }

    /// Consumes the encoder, returning the formula.
    pub fn into_cnf(self) -> Cnf {
        self.cnf
    }

    /// Borrows the formula built so far.
    pub fn cnf(&self) -> &Cnf {
        &self.cnf
    }

    /// Structural-hashing counters accumulated so far.
    pub fn stats(&self) -> EncodeStats {
        self.stats
    }

    /// The shared literal of the constant `b` (a variable forced to that
    /// value by one unit clause, valid in both directions).
    fn constant(&mut self, b: bool) -> Lit {
        let key = GateKey::Const(b);
        if let Some(entry) = self.cache.get(&key) {
            self.stats.cache_hits += 1;
            return entry.lit;
        }
        let lit = Lit::positive(self.cnf.fresh_var());
        self.cnf.add_clause([Lit::new(lit.var(), b)]);
        self.cache.insert(key, GateEntry { lit, emitted: BOTH });
        self.stats.gates += 1;
        lit
    }

    /// Looks up (or allocates) the gate of `key`, returning its literal
    /// and the subset of `need` whose clauses still have to be emitted.
    fn gate(&mut self, key: GateKey, need: u8) -> (Lit, u8) {
        match self.cache.get_mut(&key) {
            Some(entry) => {
                self.stats.cache_hits += 1;
                let missing = need & !entry.emitted;
                entry.emitted |= missing;
                (entry.lit, missing)
            }
            None => {
                self.stats.gates += 1;
                let lit = Lit::positive(self.cnf.fresh_var());
                self.cache.insert(key, GateEntry { lit, emitted: need });
                (lit, need)
            }
        }
    }

    /// Encodes `expr` bottom-up: children first, then the gate keyed on
    /// their literals, emitting the clauses of any still-missing
    /// direction in `need`. Children are encoded with the polarity their
    /// occurrence position demands (same for and/or/ite branches, flipped
    /// under negation and implication antecedents, both for iff/xor and
    /// ite conditions); when the gate itself is fully cached the child
    /// walk is a pure cache-hit traversal.
    fn ensure(&mut self, expr: &Expr, need: u8) -> Lit {
        match expr {
            Expr::Var(v) => Lit::positive(self.cnf_var(*v)),
            Expr::Not(e) => self.ensure(e, flip(need)).negated(),
            Expr::Const(b) => self.constant(*b),
            Expr::And(ops) => {
                let mut lits: Vec<Lit> = ops.iter().map(|op| self.ensure(op, need)).collect();
                lits.sort_unstable();
                lits.dedup();
                match lits.len() {
                    0 => self.constant(true),
                    1 => lits[0],
                    _ => {
                        let (g, missing) = self.gate(GateKey::And(lits.clone()), need);
                        if missing & POS != 0 {
                            // g → each operand.
                            for &lit in &lits {
                                self.cnf.add_clause([g.negated(), lit]);
                            }
                        }
                        if missing & NEG != 0 {
                            // All operands → g.
                            let mut clause: Clause = lits.iter().map(|l| l.negated()).collect();
                            clause.push(g);
                            self.cnf.add_clause(clause);
                        }
                        g
                    }
                }
            }
            Expr::Or(ops) => {
                let mut lits: Vec<Lit> = ops.iter().map(|op| self.ensure(op, need)).collect();
                lits.sort_unstable();
                lits.dedup();
                match lits.len() {
                    0 => self.constant(false),
                    1 => lits[0],
                    _ => {
                        let (g, missing) = self.gate(GateKey::Or(lits.clone()), need);
                        if missing & POS != 0 {
                            // g → some operand.
                            let mut clause: Clause = lits.clone();
                            clause.insert(0, g.negated());
                            self.cnf.add_clause(clause);
                        }
                        if missing & NEG != 0 {
                            // Each operand → g.
                            for &lit in &lits {
                                self.cnf.add_clause([lit.negated(), g]);
                            }
                        }
                        g
                    }
                }
            }
            Expr::Implies(l, r) => {
                let l = self.ensure(l, flip(need));
                let r = self.ensure(r, need);
                let (g, missing) = self.gate(GateKey::Implies(l, r), need);
                if missing & POS != 0 {
                    self.cnf.add_clause([g.negated(), l.negated(), r]);
                }
                if missing & NEG != 0 {
                    self.cnf.add_clause([g, l]);
                    self.cnf.add_clause([g, r.negated()]);
                }
                g
            }
            Expr::Iff(l, r) => {
                let mut a = self.ensure(l, BOTH);
                let mut b = self.ensure(r, BOTH);
                if b < a {
                    std::mem::swap(&mut a, &mut b);
                }
                let (g, missing) = self.gate(GateKey::Iff(a, b), need);
                if missing & POS != 0 {
                    self.cnf.add_clause([g.negated(), a.negated(), b]);
                    self.cnf.add_clause([g.negated(), a, b.negated()]);
                }
                if missing & NEG != 0 {
                    self.cnf.add_clause([g, a, b]);
                    self.cnf.add_clause([g, a.negated(), b.negated()]);
                }
                g
            }
            Expr::Xor(l, r) => {
                let mut a = self.ensure(l, BOTH);
                let mut b = self.ensure(r, BOTH);
                if b < a {
                    std::mem::swap(&mut a, &mut b);
                }
                let (g, missing) = self.gate(GateKey::Xor(a, b), need);
                if missing & POS != 0 {
                    self.cnf.add_clause([g.negated(), a, b]);
                    self.cnf.add_clause([g.negated(), a.negated(), b.negated()]);
                }
                if missing & NEG != 0 {
                    self.cnf.add_clause([g, a.negated(), b]);
                    self.cnf.add_clause([g, a, b.negated()]);
                }
                g
            }
            Expr::Ite(c, t, e) => {
                let c = self.ensure(c, BOTH);
                let t = self.ensure(t, need);
                let e = self.ensure(e, need);
                let (g, missing) = self.gate(GateKey::Ite(c, t, e), need);
                if missing & POS != 0 {
                    self.cnf.add_clause([g.negated(), c.negated(), t]);
                    self.cnf.add_clause([g.negated(), c, e]);
                }
                if missing & NEG != 0 {
                    self.cnf.add_clause([g, c.negated(), t.negated()]);
                    self.cnf.add_clause([g, c, e.negated()]);
                }
                g
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;
    use crate::vars::VarPool;

    #[test]
    fn literal_encoding() {
        let p = Lit::positive(3);
        let n = Lit::negative(3);
        assert_eq!(p.var(), 3);
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(p.negated(), n);
        assert_eq!(n.negated(), p);
        assert_eq!(p.code(), 6);
        assert_eq!(n.code(), 7);
        assert_eq!(p.to_string(), "x3");
        assert_eq!(n.to_string(), "-x3");
        assert!(p.eval(|_| true));
        assert!(!p.eval(|_| false));
        assert!(n.eval(|_| false));
    }

    #[test]
    fn cnf_basics() {
        let mut cnf = Cnf::new(0);
        assert!(cnf.is_empty());
        let a = cnf.fresh_var();
        let b = cnf.fresh_var();
        cnf.add_clause([Lit::positive(a), Lit::negative(b)]);
        cnf.add_clause([Lit::positive(b)]);
        assert_eq!(cnf.num_vars, 2);
        assert_eq!(cnf.len(), 2);
        assert!(cnf.eval(|_| true));
        assert!(!cnf.eval(|v| v == b));
        let dimacs = cnf.to_dimacs();
        assert!(dimacs.starts_with("p cnf 2 2"));
        assert!(dimacs.contains("1 -2 0"));
    }

    #[test]
    fn add_clause_grows_num_vars() {
        let mut cnf = Cnf::new(0);
        cnf.add_clause([Lit::positive(9)]);
        assert_eq!(cnf.num_vars, 10);
    }

    /// Brute-force check: the Tseitin encoding is equisatisfiable with the
    /// original expression, and projections onto the original variables agree.
    fn check_equisatisfiable(text: &str) {
        let mut pool = VarPool::new();
        let expr = parse_expr(text, &mut pool).unwrap();
        let mut enc = TseitinEncoder::new();
        let root = enc.encode(&expr);
        enc.assert_literal(root);
        let var_map = enc.var_map().clone();
        let cnf = enc.into_cnf();

        let spec_vars: Vec<_> = expr.vars().into_iter().collect();

        // For every assignment of the original variables: expr is true  iff
        // the CNF has a model extending that assignment.
        for mask in 0u64..(1 << spec_vars.len()) {
            let spec_val = |v: crate::VarId| {
                let pos = spec_vars.iter().position(|&x| x == v).unwrap();
                mask & (1 << pos) != 0
            };
            let expr_value = expr.eval_with(spec_val);

            // Enumerate auxiliary variables (those not mapped from spec vars).
            let aux: Vec<u32> = (0..cnf.num_vars)
                .filter(|v| !var_map.values().any(|mv| mv == v))
                .collect();
            assert!(aux.len() <= 16, "too many aux vars for brute force");
            let mut sat = false;
            for aux_mask in 0u64..(1 << aux.len()) {
                let value_of = |v: u32| {
                    if let Some((spec, _)) = var_map.iter().find(|(_, &mv)| mv == v) {
                        spec_val(*spec)
                    } else {
                        let pos = aux.iter().position(|&x| x == v).unwrap();
                        aux_mask & (1 << pos) != 0
                    }
                };
                if cnf.eval(value_of) {
                    sat = true;
                    break;
                }
            }
            assert_eq!(expr_value, sat, "disagreement on {text} with mask {mask:b}");
        }
    }

    #[test]
    fn tseitin_equisatisfiable_small_formulas() {
        for text in [
            "a",
            "!a",
            "a & b",
            "a | b",
            "a -> b",
            "a <-> b",
            "a ^ b",
            "if a then b else c",
            "a & !a",
            "(a | b) & (!a | c)",
            "a & b -> !c | a",
        ] {
            check_equisatisfiable(text);
        }
    }

    #[test]
    fn constants_encode_correctly() {
        let mut enc = TseitinEncoder::new();
        let t = enc.encode(&Expr::TRUE);
        enc.assert_literal(t);
        let cnf = enc.cnf().clone();
        assert!(cnf.eval(|_| true) || cnf.eval(|_| false));

        let mut enc = TseitinEncoder::new();
        let f = enc.encode(&Expr::FALSE);
        enc.assert_literal(f);
        let cnf = enc.into_cnf();
        // Forced false and asserted true: unsatisfiable for every valuation
        // of its single variable.
        assert!(!cnf.eval(|_| true) && !cnf.eval(|_| false));
    }

    #[test]
    fn var_map_is_stable() {
        let mut pool = VarPool::new();
        let e = parse_expr("a & b & a", &mut pool).unwrap();
        let mut enc = TseitinEncoder::new();
        enc.encode(&e);
        assert_eq!(enc.var_map().len(), 2);
    }

    #[test]
    fn structural_hashing_shares_repeated_subterms() {
        let mut pool = VarPool::new();
        // The conjunction appears on both sides of the implication: one gate.
        let e = parse_expr("(a & b) -> (a & b) & c", &mut pool).unwrap();
        let mut enc = TseitinEncoder::new();
        let first = enc.encode(&e);
        let clauses = enc.cnf().len();
        let vars = enc.cnf().num_vars;
        // Re-encoding is free: same literal, no new clauses or variables.
        let second = enc.encode(&e);
        assert_eq!(first, second);
        assert_eq!(enc.cnf().len(), clauses);
        assert_eq!(enc.cnf().num_vars, vars);

        // Without sharing, `a & b` would be defined twice; with it, one
        // `a & b` gate, one `(a & b) & c` gate, one implication gate.
        let shared = parse_expr("(a & b) -> (a & b)", &mut pool).unwrap();
        let mut enc = TseitinEncoder::new();
        enc.encode(&shared);
        let num_gates = enc.cnf().num_vars - 2; // minus the two variables
        assert_eq!(num_gates, 2, "a & b must be hash-consed");
    }

    /// Brute-force satisfiability of a CNF (for the small test formulas).
    fn cnf_satisfiable(cnf: &Cnf) -> bool {
        assert!(cnf.num_vars <= 22, "too many variables for brute force");
        (0u64..(1 << cnf.num_vars)).any(|mask| cnf.eval(|v| mask & (1 << v) != 0))
    }

    /// The Plaisted–Greenbaum encoding (root asserted positively) and the
    /// full Tseitin encoding must be equisatisfiable, and PG must never
    /// emit more clauses.
    fn check_pg_equisatisfiable(expr: &Expr) {
        let mut full = TseitinEncoder::new();
        let root = full.encode(expr);
        full.assert_literal(root);
        let full = full.into_cnf();

        let mut pg = TseitinEncoder::new();
        pg.assert_expr(expr);
        let pg = pg.into_cnf();

        assert!(
            pg.len() <= full.len(),
            "PG emitted more clauses ({}) than full Tseitin ({}) for {expr:?}",
            pg.len(),
            full.len()
        );
        assert_eq!(
            cnf_satisfiable(&full),
            cnf_satisfiable(&pg),
            "PG and full Tseitin disagree on {expr:?}"
        );
    }

    #[test]
    fn plaisted_greenbaum_equisatisfiable_small_formulas() {
        let mut pool = VarPool::new();
        for text in [
            "a",
            "!a",
            "a & b",
            "a | b",
            "a -> b",
            "a <-> b",
            "a ^ b",
            "if a then b else c",
            "a & !a",
            "(a | b) & (!a | c)",
            "a & b -> !c | a",
            "!(a & b) | !(a | b)",
            "((a -> b) -> a) -> a",
            "!(if a ^ b then a <-> c else !(b | c))",
        ] {
            let expr = parse_expr(text, &mut pool).unwrap();
            check_pg_equisatisfiable(&expr);
        }
    }

    /// A deterministic random expression over `vars` variables.
    fn random_expr(rng: &mut impl rand::Rng, vars: u32, depth: u32) -> Expr {
        if depth == 0 || rng.random_range(0..6) == 0 {
            let v = VarId(rng.random_range(0..vars));
            return if rng.random_bool(0.5) {
                Expr::Var(v)
            } else {
                Expr::Not(Expr::Var(v).into())
            };
        }
        let sub = |rng: &mut _| random_expr(rng, vars, depth - 1);
        match rng.random_range(0..7) {
            0 => Expr::And(vec![sub(rng), sub(rng)]),
            1 => Expr::Or(vec![sub(rng), sub(rng)]),
            2 => Expr::Implies(sub(rng).into(), sub(rng).into()),
            3 => Expr::Iff(sub(rng).into(), sub(rng).into()),
            4 => Expr::Xor(sub(rng).into(), sub(rng).into()),
            5 => Expr::Ite(sub(rng).into(), sub(rng).into(), sub(rng).into()),
            _ => Expr::Not(sub(rng).into()),
        }
    }

    #[test]
    fn plaisted_greenbaum_equisatisfiable_random_formulas() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mut rng = StdRng::seed_from_u64(0x7E17);
        for _ in 0..150 {
            let expr = random_expr(&mut rng, 4, 3);
            check_pg_equisatisfiable(&expr);
        }
    }

    #[test]
    fn polarity_negative_encoding_supports_refutation() {
        // Encoding with Negative polarity constrains the f → g direction:
        // asserting ¬g then forces ¬f, the shape of a validity query.
        let mut pool = VarPool::new();
        let tautology = parse_expr("a | !a", &mut pool).unwrap();
        let mut enc = TseitinEncoder::new();
        let root = enc.encode_with_polarity(&tautology, Polarity::Negative);
        enc.assert_literal(root.negated());
        assert!(!cnf_satisfiable(enc.cnf()), "¬(a | !a) must be unsat");

        let satisfiable = parse_expr("a & b", &mut pool).unwrap();
        let mut enc = TseitinEncoder::new();
        let root = enc.encode_with_polarity(&satisfiable, Polarity::Negative);
        enc.assert_literal(root.negated());
        assert!(cnf_satisfiable(enc.cnf()), "¬(a & b) must be sat");
    }
}
