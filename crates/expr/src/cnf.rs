//! Conjunctive normal form and the Tseitin encoding.
//!
//! The SAT engine in `ipcl-sat` consumes [`Cnf`] formulas. Validity and
//! implication queries over specification expressions are answered by encoding
//! the *negation* of the query with [`TseitinEncoder`] and checking
//! unsatisfiability.

use std::fmt;

use crate::expr::Expr;
use crate::vars::VarId;

/// A literal: a CNF variable index with a sign.
///
/// CNF variables are separate from specification [`VarId`]s because the
/// Tseitin encoding introduces fresh definition variables; the encoder keeps
/// the mapping.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Lit {
    code: u32,
}

impl Lit {
    /// Creates a literal for CNF variable `var` (0-based) with polarity
    /// `positive`.
    pub fn new(var: u32, positive: bool) -> Lit {
        Lit {
            code: var << 1 | u32::from(!positive),
        }
    }

    /// Positive literal of `var`.
    pub fn positive(var: u32) -> Lit {
        Lit::new(var, true)
    }

    /// Negative literal of `var`.
    pub fn negative(var: u32) -> Lit {
        Lit::new(var, false)
    }

    /// The CNF variable index.
    pub fn var(self) -> u32 {
        self.code >> 1
    }

    /// Whether the literal is positive.
    pub fn is_positive(self) -> bool {
        self.code & 1 == 0
    }

    /// The complementary literal.
    pub fn negated(self) -> Lit {
        Lit {
            code: self.code ^ 1,
        }
    }

    /// Dense code useful for indexing watch lists (`2*var + sign`).
    pub fn code(self) -> usize {
        self.code as usize
    }

    /// Evaluates the literal under a total valuation of CNF variables.
    pub fn eval(self, value_of: impl Fn(u32) -> bool) -> bool {
        value_of(self.var()) == self.is_positive()
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "x{}", self.var())
        } else {
            write!(f, "-x{}", self.var())
        }
    }
}

/// A clause: a disjunction of literals.
pub type Clause = Vec<Lit>;

/// A formula in conjunctive normal form.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cnf {
    /// Number of CNF variables; all literals reference variables below this.
    pub num_vars: u32,
    /// The clauses. An empty clause makes the formula unsatisfiable.
    pub clauses: Vec<Clause>,
}

impl Cnf {
    /// Creates an empty (trivially satisfiable) formula over `num_vars`
    /// variables.
    pub fn new(num_vars: u32) -> Cnf {
        Cnf {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Allocates a fresh CNF variable and returns its index.
    pub fn fresh_var(&mut self) -> u32 {
        let v = self.num_vars;
        self.num_vars += 1;
        v
    }

    /// Adds a clause. Literals referencing unknown variables grow the
    /// variable count.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, literals: I) {
        let clause: Clause = literals.into_iter().collect();
        for lit in &clause {
            if lit.var() >= self.num_vars {
                self.num_vars = lit.var() + 1;
            }
        }
        self.clauses.push(clause);
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether the formula has no clauses.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Evaluates the formula under a total valuation.
    pub fn eval(&self, value_of: impl Fn(u32) -> bool + Copy) -> bool {
        self.clauses
            .iter()
            .all(|clause| clause.iter().any(|lit| lit.eval(value_of)))
    }

    /// Renders the formula in DIMACS format.
    pub fn to_dimacs(&self) -> String {
        let mut out = format!("p cnf {} {}\n", self.num_vars, self.clauses.len());
        for clause in &self.clauses {
            for lit in clause {
                let v = lit.var() as i64 + 1;
                let signed = if lit.is_positive() { v } else { -v };
                out.push_str(&signed.to_string());
                out.push(' ');
            }
            out.push_str("0\n");
        }
        out
    }
}

/// Tseitin encoder translating [`Expr`]s into [`Cnf`] with a stable mapping
/// from specification variables to CNF variables.
///
/// # Example
///
/// ```
/// use ipcl_expr::{parse_expr, TseitinEncoder, VarPool};
///
/// let mut pool = VarPool::new();
/// let e = parse_expr("a & !a", &mut pool)?;
/// let mut enc = TseitinEncoder::new();
/// let root = enc.encode(&e);
/// enc.assert_literal(root);
/// // The encoded formula is unsatisfiable because `a & !a` is.
/// assert!(enc.cnf().clauses.len() >= 3);
/// # Ok::<(), ipcl_expr::ParseError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct TseitinEncoder {
    cnf: Cnf,
    var_map: std::collections::BTreeMap<VarId, u32>,
}

impl TseitinEncoder {
    /// Creates an encoder with an empty formula.
    pub fn new() -> Self {
        Self::default()
    }

    /// The CNF variable representing specification variable `var`,
    /// allocating one on first use.
    pub fn cnf_var(&mut self, var: VarId) -> u32 {
        if let Some(&v) = self.var_map.get(&var) {
            return v;
        }
        let v = self.cnf.fresh_var();
        self.var_map.insert(var, v);
        v
    }

    /// The mapping from specification variables to CNF variables built so far.
    pub fn var_map(&self) -> &std::collections::BTreeMap<VarId, u32> {
        &self.var_map
    }

    /// Encodes `expr`, returning the literal that is true iff the expression
    /// is true. Clauses defining intermediate gates are added to the formula.
    pub fn encode(&mut self, expr: &Expr) -> Lit {
        match expr {
            Expr::Const(b) => {
                // A fresh variable constrained to the constant value; the
                // positive literal of that variable then *is* the constant.
                let v = self.cnf.fresh_var();
                self.cnf.add_clause([Lit::new(v, *b)]);
                Lit::positive(v)
            }
            Expr::Var(v) => Lit::positive(self.cnf_var(*v)),
            Expr::Not(e) => self.encode(e).negated(),
            Expr::And(ops) => {
                let lits: Vec<Lit> = ops.iter().map(|op| self.encode(op)).collect();
                self.define_and(&lits)
            }
            Expr::Or(ops) => {
                let lits: Vec<Lit> = ops.iter().map(|op| self.encode(op)).collect();
                self.define_and(&lits.iter().map(|l| l.negated()).collect::<Vec<_>>())
                    .negated()
            }
            Expr::Implies(l, r) => {
                let l = self.encode(l);
                let r = self.encode(r);
                // l -> r  ==  !(l & !r)
                self.define_and(&[l, r.negated()]).negated()
            }
            Expr::Iff(l, r) => {
                let l = self.encode(l);
                let r = self.encode(r);
                self.define_iff(l, r)
            }
            Expr::Xor(l, r) => {
                let l = self.encode(l);
                let r = self.encode(r);
                self.define_iff(l, r).negated()
            }
            Expr::Ite(c, t, e) => {
                let c = self.encode(c);
                let t = self.encode(t);
                let e = self.encode(e);
                // ite(c,t,e) == (c & t) | (!c & e)
                let ct = self.define_and(&[c, t]);
                let ce = self.define_and(&[c.negated(), e]);
                self.define_and(&[ct.negated(), ce.negated()]).negated()
            }
        }
    }

    /// Adds a unit clause forcing `lit` to be true.
    pub fn assert_literal(&mut self, lit: Lit) {
        self.cnf.add_clause([lit]);
    }

    /// Consumes the encoder, returning the formula.
    pub fn into_cnf(self) -> Cnf {
        self.cnf
    }

    /// Borrows the formula built so far.
    pub fn cnf(&self) -> &Cnf {
        &self.cnf
    }

    /// Defines a fresh gate `g <-> AND(lits)` and returns the literal `g`.
    fn define_and(&mut self, lits: &[Lit]) -> Lit {
        if lits.is_empty() {
            // Empty conjunction is true: a fresh variable forced to 1.
            let v = self.cnf.fresh_var();
            self.cnf.add_clause([Lit::positive(v)]);
            return Lit::positive(v);
        }
        if lits.len() == 1 {
            return lits[0];
        }
        let g = Lit::positive(self.cnf.fresh_var());
        // g -> each literal
        for &lit in lits {
            self.cnf.add_clause([g.negated(), lit]);
        }
        // all literals -> g
        let mut clause: Clause = lits.iter().map(|l| l.negated()).collect();
        clause.push(g);
        self.cnf.add_clause(clause);
        g
    }

    /// Defines a fresh gate `g <-> (a <-> b)` and returns `g`.
    fn define_iff(&mut self, a: Lit, b: Lit) -> Lit {
        let g = Lit::positive(self.cnf.fresh_var());
        self.cnf.add_clause([g.negated(), a.negated(), b]);
        self.cnf.add_clause([g.negated(), a, b.negated()]);
        self.cnf.add_clause([g, a, b]);
        self.cnf.add_clause([g, a.negated(), b.negated()]);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;
    use crate::vars::VarPool;

    #[test]
    fn literal_encoding() {
        let p = Lit::positive(3);
        let n = Lit::negative(3);
        assert_eq!(p.var(), 3);
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(p.negated(), n);
        assert_eq!(n.negated(), p);
        assert_eq!(p.code(), 6);
        assert_eq!(n.code(), 7);
        assert_eq!(p.to_string(), "x3");
        assert_eq!(n.to_string(), "-x3");
        assert!(p.eval(|_| true));
        assert!(!p.eval(|_| false));
        assert!(n.eval(|_| false));
    }

    #[test]
    fn cnf_basics() {
        let mut cnf = Cnf::new(0);
        assert!(cnf.is_empty());
        let a = cnf.fresh_var();
        let b = cnf.fresh_var();
        cnf.add_clause([Lit::positive(a), Lit::negative(b)]);
        cnf.add_clause([Lit::positive(b)]);
        assert_eq!(cnf.num_vars, 2);
        assert_eq!(cnf.len(), 2);
        assert!(cnf.eval(|_| true));
        assert!(!cnf.eval(|v| v == b));
        let dimacs = cnf.to_dimacs();
        assert!(dimacs.starts_with("p cnf 2 2"));
        assert!(dimacs.contains("1 -2 0"));
    }

    #[test]
    fn add_clause_grows_num_vars() {
        let mut cnf = Cnf::new(0);
        cnf.add_clause([Lit::positive(9)]);
        assert_eq!(cnf.num_vars, 10);
    }

    /// Brute-force check: the Tseitin encoding is equisatisfiable with the
    /// original expression, and projections onto the original variables agree.
    fn check_equisatisfiable(text: &str) {
        let mut pool = VarPool::new();
        let expr = parse_expr(text, &mut pool).unwrap();
        let mut enc = TseitinEncoder::new();
        let root = enc.encode(&expr);
        enc.assert_literal(root);
        let var_map = enc.var_map().clone();
        let cnf = enc.into_cnf();

        let spec_vars: Vec<_> = expr.vars().into_iter().collect();

        // For every assignment of the original variables: expr is true  iff
        // the CNF has a model extending that assignment.
        for mask in 0u64..(1 << spec_vars.len()) {
            let spec_val = |v: crate::VarId| {
                let pos = spec_vars.iter().position(|&x| x == v).unwrap();
                mask & (1 << pos) != 0
            };
            let expr_value = expr.eval_with(spec_val);

            // Enumerate auxiliary variables (those not mapped from spec vars).
            let aux: Vec<u32> = (0..cnf.num_vars)
                .filter(|v| !var_map.values().any(|mv| mv == v))
                .collect();
            assert!(aux.len() <= 16, "too many aux vars for brute force");
            let mut sat = false;
            for aux_mask in 0u64..(1 << aux.len()) {
                let value_of = |v: u32| {
                    if let Some((spec, _)) = var_map.iter().find(|(_, &mv)| mv == v) {
                        spec_val(*spec)
                    } else {
                        let pos = aux.iter().position(|&x| x == v).unwrap();
                        aux_mask & (1 << pos) != 0
                    }
                };
                if cnf.eval(value_of) {
                    sat = true;
                    break;
                }
            }
            assert_eq!(expr_value, sat, "disagreement on {text} with mask {mask:b}");
        }
    }

    #[test]
    fn tseitin_equisatisfiable_small_formulas() {
        for text in [
            "a",
            "!a",
            "a & b",
            "a | b",
            "a -> b",
            "a <-> b",
            "a ^ b",
            "if a then b else c",
            "a & !a",
            "(a | b) & (!a | c)",
            "a & b -> !c | a",
        ] {
            check_equisatisfiable(text);
        }
    }

    #[test]
    fn constants_encode_correctly() {
        let mut enc = TseitinEncoder::new();
        let t = enc.encode(&Expr::TRUE);
        enc.assert_literal(t);
        let cnf = enc.cnf().clone();
        assert!(cnf.eval(|_| true) || cnf.eval(|_| false));

        let mut enc = TseitinEncoder::new();
        let f = enc.encode(&Expr::FALSE);
        enc.assert_literal(f);
        let cnf = enc.into_cnf();
        // Forced false and asserted true: unsatisfiable for every valuation
        // of its single variable.
        assert!(!cnf.eval(|_| true) && !cnf.eval(|_| false));
    }

    #[test]
    fn var_map_is_stable() {
        let mut pool = VarPool::new();
        let e = parse_expr("a & b & a", &mut pool).unwrap();
        let mut enc = TseitinEncoder::new();
        enc.encode(&e);
        assert_eq!(enc.var_map().len(), 2);
    }
}
