//! Parser for the textual specification expression language.
//!
//! Grammar (lowest to highest precedence):
//!
//! ```text
//! expr    := ite | iff
//! ite     := "if" expr "then" expr "else" expr
//! iff     := imp ( "<->" imp )*
//! imp     := or ( "->" imp )?                 (right associative)
//! or      := and ( ("|" | "^") and )*
//! and     := unary ( "&" unary )*
//! unary   := "!" unary | atom
//! atom    := "true" | "false" | identifier | "(" expr ")"
//! ```
//!
//! Identifiers may contain letters, digits, `_`, `.`, `[`, `]` — so signal
//! names like `long.1.moe`, `scb[3]` or `c.regaddr[0]` are single tokens.

use std::fmt;

use crate::expr::Expr;
use crate::vars::VarPool;

/// Error produced when parsing a specification expression.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub position: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Token {
    Ident(String),
    True,
    False,
    Not,
    And,
    Or,
    Xor,
    Implies,
    Iff,
    LParen,
    RParen,
    If,
    Then,
    Else,
}

struct Lexer<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer { input, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn tokenize(mut self) -> Result<Vec<(usize, Token)>, ParseError> {
        let bytes = self.input.as_bytes();
        let mut tokens = Vec::new();
        while self.pos < bytes.len() {
            let start = self.pos;
            let c = bytes[self.pos] as char;
            match c {
                ' ' | '\t' | '\n' | '\r' => {
                    self.pos += 1;
                }
                '(' => {
                    tokens.push((start, Token::LParen));
                    self.pos += 1;
                }
                ')' => {
                    tokens.push((start, Token::RParen));
                    self.pos += 1;
                }
                '!' | '~' => {
                    tokens.push((start, Token::Not));
                    self.pos += 1;
                }
                '&' => {
                    self.pos += 1;
                    if bytes.get(self.pos) == Some(&b'&') {
                        self.pos += 1;
                    }
                    tokens.push((start, Token::And));
                }
                '|' => {
                    self.pos += 1;
                    if bytes.get(self.pos) == Some(&b'|') {
                        self.pos += 1;
                    }
                    tokens.push((start, Token::Or));
                }
                '^' => {
                    tokens.push((start, Token::Xor));
                    self.pos += 1;
                }
                '-' => {
                    if bytes.get(self.pos + 1) == Some(&b'>') {
                        tokens.push((start, Token::Implies));
                        self.pos += 2;
                    } else {
                        return Err(self.error("expected '->'"));
                    }
                }
                '<' => {
                    if self.input[self.pos..].starts_with("<->") {
                        tokens.push((start, Token::Iff));
                        self.pos += 3;
                    } else {
                        return Err(self.error("expected '<->'"));
                    }
                }
                c if c.is_ascii_alphanumeric() || c == '_' => {
                    let mut end = self.pos;
                    while end < bytes.len() {
                        let ch = bytes[end] as char;
                        if ch.is_ascii_alphanumeric()
                            || ch == '_'
                            || ch == '.'
                            || ch == '['
                            || ch == ']'
                        {
                            end += 1;
                        } else {
                            break;
                        }
                    }
                    let word = &self.input[self.pos..end];
                    self.pos = end;
                    let token = match word {
                        "true" | "TRUE" | "1" => Token::True,
                        "false" | "FALSE" | "0" => Token::False,
                        "if" => Token::If,
                        "then" => Token::Then,
                        "else" => Token::Else,
                        "and" => Token::And,
                        "or" => Token::Or,
                        "not" => Token::Not,
                        _ => Token::Ident(word.to_owned()),
                    };
                    tokens.push((start, token));
                }
                other => return Err(self.error(format!("unexpected character '{other}'"))),
            }
        }
        Ok(tokens)
    }
}

struct Parser<'a> {
    tokens: Vec<(usize, Token)>,
    cursor: usize,
    pool: &'a mut VarPool,
    input_len: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.cursor).map(|(_, t)| t)
    }

    fn position(&self) -> usize {
        self.tokens
            .get(self.cursor)
            .map(|(p, _)| *p)
            .unwrap_or(self.input_len)
    }

    fn bump(&mut self) -> Option<Token> {
        let tok = self.tokens.get(self.cursor).map(|(_, t)| t.clone());
        self.cursor += 1;
        tok
    }

    fn expect(&mut self, expected: &Token, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(expected) {
            self.cursor += 1;
            Ok(())
        } else {
            Err(ParseError {
                position: self.position(),
                message: format!("expected {what}"),
            })
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        if self.peek() == Some(&Token::If) {
            self.cursor += 1;
            let cond = self.parse_expr()?;
            self.expect(&Token::Then, "'then'")?;
            let then = self.parse_expr()?;
            self.expect(&Token::Else, "'else'")?;
            let els = self.parse_expr()?;
            return Ok(Expr::ite(cond, then, els));
        }
        self.parse_iff()
    }

    fn parse_iff(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_implies()?;
        while self.peek() == Some(&Token::Iff) {
            self.cursor += 1;
            let rhs = self.parse_implies()?;
            lhs = Expr::iff(lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_implies(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_or()?;
        if self.peek() == Some(&Token::Implies) {
            self.cursor += 1;
            let rhs = self.parse_implies()?;
            Ok(Expr::implies(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut operands = vec![self.parse_and()?];
        loop {
            match self.peek() {
                Some(Token::Or) => {
                    self.cursor += 1;
                    operands.push(self.parse_and()?);
                }
                Some(Token::Xor) => {
                    self.cursor += 1;
                    let rhs = self.parse_and()?;
                    let lhs = if operands.len() == 1 {
                        operands.pop().expect("one operand")
                    } else {
                        Expr::or(std::mem::take(&mut operands))
                    };
                    operands.push(Expr::xor(lhs, rhs));
                }
                _ => break,
            }
        }
        Ok(Expr::or(operands))
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut operands = vec![self.parse_unary()?];
        while self.peek() == Some(&Token::And) {
            self.cursor += 1;
            operands.push(self.parse_unary()?);
        }
        Ok(Expr::and(operands))
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.peek() == Some(&Token::Not) {
            self.cursor += 1;
            return Ok(Expr::not(self.parse_unary()?));
        }
        self.parse_atom()
    }

    fn parse_atom(&mut self) -> Result<Expr, ParseError> {
        let position = self.position();
        match self.bump() {
            Some(Token::True) => Ok(Expr::TRUE),
            Some(Token::False) => Ok(Expr::FALSE),
            Some(Token::Ident(name)) => Ok(Expr::var(self.pool.var(&name))),
            Some(Token::LParen) => {
                let inner = self.parse_expr()?;
                self.expect(&Token::RParen, "')'")?;
                Ok(inner)
            }
            other => Err(ParseError {
                position,
                message: format!("expected an atom, found {other:?}"),
            }),
        }
    }
}

/// Parses `input` into an [`Expr`], interning variable names in `pool`.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first offending position if the
/// input is not a well-formed expression.
///
/// # Example
///
/// ```
/// use ipcl_expr::{parse_expr, VarPool};
///
/// let mut pool = VarPool::new();
/// let e = parse_expr("long.req & !long.gnt -> !long.4.moe", &mut pool)?;
/// assert_eq!(e.vars().len(), 3);
/// # Ok::<(), ipcl_expr::ParseError>(())
/// ```
pub fn parse_expr(input: &str, pool: &mut VarPool) -> Result<Expr, ParseError> {
    let tokens = Lexer::new(input).tokenize()?;
    let mut parser = Parser {
        tokens,
        cursor: 0,
        pool,
        input_len: input.len(),
    };
    let expr = parser.parse_expr()?;
    if parser.cursor != parser.tokens.len() {
        return Err(ParseError {
            position: parser.position(),
            message: "trailing input after expression".to_owned(),
        });
    }
    Ok(expr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::semantically_equal;

    fn parse(text: &str) -> (Expr, VarPool) {
        let mut pool = VarPool::new();
        let e = parse_expr(text, &mut pool).expect("parse");
        (e, pool)
    }

    #[test]
    fn atoms() {
        assert_eq!(parse("true").0, Expr::TRUE);
        assert_eq!(parse("false").0, Expr::FALSE);
        assert_eq!(parse("1").0, Expr::TRUE);
        assert_eq!(parse("0").0, Expr::FALSE);
        let (e, pool) = parse("long.1.moe");
        assert_eq!(e, Expr::var(pool.lookup("long.1.moe").unwrap()));
    }

    #[test]
    fn dotted_and_indexed_identifiers() {
        let (e, pool) = parse("scb[3] & c.regaddr[0]");
        assert!(pool.lookup("scb[3]").is_some());
        assert!(pool.lookup("c.regaddr[0]").is_some());
        assert_eq!(e.vars().len(), 2);
    }

    #[test]
    fn precedence_and_over_or() {
        let (e, pool) = parse("a | b & c");
        let a = pool.lookup("a").unwrap();
        let b = pool.lookup("b").unwrap();
        let c = pool.lookup("c").unwrap();
        assert_eq!(
            e,
            Expr::or([Expr::var(a), Expr::and([Expr::var(b), Expr::var(c)])])
        );
    }

    #[test]
    fn implication_is_right_associative_and_lowest() {
        let (e, pool) = parse("a & b -> c -> d");
        let a = pool.lookup("a").unwrap();
        let b = pool.lookup("b").unwrap();
        let c = pool.lookup("c").unwrap();
        let d = pool.lookup("d").unwrap();
        assert_eq!(
            e,
            Expr::implies(
                Expr::and([Expr::var(a), Expr::var(b)]),
                Expr::implies(Expr::var(c), Expr::var(d))
            )
        );
    }

    #[test]
    fn alternative_operator_spellings() {
        let (e1, _) = parse("a && b || !c");
        let (e2, _) = parse("a and b or not c");
        assert!(semantically_equal(&e1, &e2));
        let (e3, _) = parse("~a");
        let (e4, _) = parse("!a");
        assert!(semantically_equal(&e3, &e4));
    }

    #[test]
    fn if_then_else() {
        let (e, pool) = parse("if a then b else c");
        let a = pool.lookup("a").unwrap();
        let b = pool.lookup("b").unwrap();
        let c = pool.lookup("c").unwrap();
        assert_eq!(e, Expr::ite(Expr::var(a), Expr::var(b), Expr::var(c)));
    }

    #[test]
    fn parentheses_override_precedence() {
        let (e, _) = parse("(a | b) & c");
        match e {
            Expr::And(ops) => assert_eq!(ops.len(), 2),
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn error_positions() {
        let mut pool = VarPool::new();
        let err = parse_expr("a &", &mut pool).unwrap_err();
        assert!(err.message.contains("atom"));
        let err = parse_expr("a b", &mut pool).unwrap_err();
        assert!(err.message.contains("trailing"));
        let err = parse_expr("a @ b", &mut pool).unwrap_err();
        assert!(err.message.contains("unexpected character"));
        let err = parse_expr("(a", &mut pool).unwrap_err();
        assert!(err.message.contains("')'"));
        let err = parse_expr("a - b", &mut pool).unwrap_err();
        assert!(err.message.contains("->"));
        let err = parse_expr("a <- b", &mut pool).unwrap_err();
        assert!(err.message.contains("<->"));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn paper_fig2_long_pipe_rule_parses() {
        // One conjunct of Figure 2 written in the textual syntax.
        let text = "long.1.rtm & !long.2.moe \
                    | op_is_wait \
                    | !short.1.moe \
                    | long.1.src.outstanding | long.1.dst.outstanding \
                    -> !long.1.moe";
        let (e, pool) = parse(text);
        assert_eq!(e.vars().len(), 7);
        assert!(pool.lookup("op_is_wait").is_some());
        assert!(matches!(e, Expr::Implies(_, _)));
    }
}
