//! Interned boolean variables.
//!
//! Every signal referenced by a specification — `long.2.moe`, `scb[3]`,
//! `c.regaddr[0]`, … — is interned once in a [`VarPool`] and referred to by a
//! compact [`VarId`]. The pool owns the name strings; expressions and BDD/SAT
//! engines only carry ids.

use std::collections::HashMap;
use std::fmt;

/// Identifier of an interned boolean variable.
///
/// Ids are dense and start at zero, so they can index vectors directly
/// (assignment vectors, BDD variable orders, …).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VarId(pub u32);

impl VarId {
    /// Returns the id as a `usize`, suitable for indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for VarId {
    fn from(raw: u32) -> Self {
        VarId(raw)
    }
}

/// An interner mapping variable names to dense [`VarId`]s and back.
///
/// # Example
///
/// ```
/// use ipcl_expr::VarPool;
///
/// let mut pool = VarPool::new();
/// let a = pool.var("long.1.moe");
/// let b = pool.var("long.1.moe");
/// assert_eq!(a, b);
/// assert_eq!(pool.name(a), Some("long.1.moe"));
/// assert_eq!(pool.len(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VarPool {
    names: Vec<String>,
    index: HashMap<String, VarId>,
}

impl VarPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id. Repeated calls with the same name
    /// return the same id.
    pub fn var(&mut self, name: &str) -> VarId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = VarId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Looks a name up without interning it.
    pub fn lookup(&self, name: &str) -> Option<VarId> {
        self.index.get(name).copied()
    }

    /// Returns the name of `id`, if `id` was allocated by this pool.
    pub fn name(&self, id: VarId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Returns the name of `id`, or a positional fallback (`v<N>`) if unknown.
    pub fn name_or_fallback(&self, id: VarId) -> String {
        self.name(id)
            .map(str::to_owned)
            .unwrap_or_else(|| format!("v{}", id.0))
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &str)> + '_ {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (VarId(i as u32), n.as_str()))
    }

    /// All ids in allocation order.
    pub fn ids(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.names.len() as u32).map(VarId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut pool = VarPool::new();
        let a = pool.var("a");
        let b = pool.var("b");
        let a2 = pool.var("a");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut pool = VarPool::new();
        let ids: Vec<VarId> = (0..10).map(|i| pool.var(&format!("x{i}"))).collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.index(), i);
        }
        assert_eq!(pool.ids().count(), 10);
    }

    #[test]
    fn lookup_and_name() {
        let mut pool = VarPool::new();
        let a = pool.var("scb[3]");
        assert_eq!(pool.lookup("scb[3]"), Some(a));
        assert_eq!(pool.lookup("scb[4]"), None);
        assert_eq!(pool.name(a), Some("scb[3]"));
        assert_eq!(pool.name(VarId(42)), None);
        assert_eq!(pool.name_or_fallback(VarId(42)), "v42");
    }

    #[test]
    fn iter_yields_allocation_order() {
        let mut pool = VarPool::new();
        pool.var("a");
        pool.var("b");
        let collected: Vec<(VarId, String)> = pool.iter().map(|(i, n)| (i, n.to_owned())).collect();
        assert_eq!(
            collected,
            vec![(VarId(0), "a".to_owned()), (VarId(1), "b".to_owned())]
        );
    }

    #[test]
    fn display_of_var_id() {
        assert_eq!(VarId(7).to_string(), "v7");
        assert_eq!(VarId::from(3u32), VarId(3));
    }

    #[test]
    fn empty_pool() {
        let pool = VarPool::new();
        assert!(pool.is_empty());
        assert_eq!(pool.len(), 0);
    }
}
