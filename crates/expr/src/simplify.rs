//! Structural simplification of expressions.
//!
//! The simplifier performs semantics-preserving rewrites that keep the printed
//! specifications readable: constant folding, idempotence, absorption,
//! complement detection within one conjunction/disjunction level, and removal
//! of duplicate operands. It is deliberately *not* a canonicaliser — use
//! `ipcl-bdd` when a canonical form is needed.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use crate::expr::Expr;

/// Memoisation table keyed on the addresses of `Arc`-shared subterms.
///
/// Expressions extracted from netlists (`ipcl-rtl`) share their fan-in cones
/// through `Arc`s, so the same subterm can be reachable exponentially many
/// times through distinct paths. Simplifying each shared node once is the
/// difference between milliseconds and the lifetime of the universe on deep
/// shared structures. Keys stay valid for the table's lifetime because the
/// root expression (held by the caller) keeps every shared child alive.
type SimplifyCache = HashMap<*const Expr, Expr>;

/// Simplifies `expr` without changing its meaning.
///
/// # Example
///
/// ```
/// use ipcl_expr::{simplify::simplify, Expr, VarPool};
///
/// let mut pool = VarPool::new();
/// let a = Expr::var(pool.var("a"));
/// let e = Expr::and([a.clone(), a.clone(), Expr::or([a.clone(), Expr::FALSE])]);
/// assert_eq!(simplify(&e), a);
/// ```
pub fn simplify(expr: &Expr) -> Expr {
    let mut cache = SimplifyCache::new();
    simplify_rec(expr, &mut cache)
}

/// Simplifies an `Arc`-shared child through the memoisation table.
fn simplify_arc(arc: &Arc<Expr>, cache: &mut SimplifyCache) -> Expr {
    let key = Arc::as_ptr(arc);
    if let Some(hit) = cache.get(&key) {
        return hit.clone();
    }
    let result = simplify_rec(arc, cache);
    cache.insert(key, result.clone());
    result
}

fn simplify_rec(expr: &Expr, cache: &mut SimplifyCache) -> Expr {
    match expr {
        Expr::Const(_) | Expr::Var(_) => expr.clone(),
        Expr::Not(e) => Expr::not(simplify_arc(e, cache)),
        Expr::And(ops) => simplify_nary(ops, true, cache),
        Expr::Or(ops) => simplify_nary(ops, false, cache),
        Expr::Implies(l, r) => Expr::implies(simplify_arc(l, cache), simplify_arc(r, cache)),
        Expr::Iff(l, r) => {
            let (l, r) = (simplify_arc(l, cache), simplify_arc(r, cache));
            if l == r {
                Expr::TRUE
            } else if l == Expr::not(r.clone()) {
                Expr::FALSE
            } else {
                Expr::iff(l, r)
            }
        }
        Expr::Xor(l, r) => {
            let (l, r) = (simplify_arc(l, cache), simplify_arc(r, cache));
            if l == r {
                Expr::FALSE
            } else if l == Expr::not(r.clone()) {
                Expr::TRUE
            } else {
                Expr::xor(l, r)
            }
        }
        Expr::Ite(c, t, e) => {
            let (c, t, e) = (
                simplify_arc(c, cache),
                simplify_arc(t, cache),
                simplify_arc(e, cache),
            );
            if t == e {
                t
            } else {
                Expr::ite(c, t, e)
            }
        }
    }
}

/// Simplifies an n-ary conjunction (`conjunction == true`) or disjunction.
fn simplify_nary(ops: &[Expr], conjunction: bool, cache: &mut SimplifyCache) -> Expr {
    let simplified: Vec<Expr> = ops.iter().map(|op| simplify_rec(op, cache)).collect();
    // Flatten through the smart constructor first (it also folds constants).
    let flattened = if conjunction {
        Expr::and(simplified)
    } else {
        Expr::or(simplified)
    };
    let children = match &flattened {
        Expr::And(ops) if conjunction => ops.clone(),
        Expr::Or(ops) if !conjunction => ops.clone(),
        other => return other.clone(),
    };

    // Deduplicate operands while preserving order.
    let mut seen = BTreeSet::new();
    let mut unique = Vec::new();
    for child in children {
        let key = format!("{child:?}");
        if seen.insert(key) {
            unique.push(child);
        }
    }

    // Complement detection: x and !x in one level collapse the whole node.
    for child in &unique {
        let negated = Expr::not(child.clone());
        if unique.contains(&negated) {
            return Expr::Const(!conjunction);
        }
    }

    // Absorption: a & (a | b) == a;  a | (a & b) == a.
    let absorbed: Vec<Expr> = unique
        .iter()
        .filter(|child| {
            !unique.iter().any(|other| {
                if *child == other {
                    return false;
                }
                match (conjunction, child) {
                    (true, Expr::Or(inner)) => inner.contains(other),
                    (false, Expr::And(inner)) => inner.contains(other),
                    _ => false,
                }
            })
        })
        .cloned()
        .collect();

    if conjunction {
        Expr::and(absorbed)
    } else {
        Expr::or(absorbed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::semantically_equal;
    use crate::vars::{VarId, VarPool};

    fn vars() -> (VarPool, Expr, Expr, Expr) {
        let mut pool = VarPool::new();
        let a = Expr::var(pool.var("a"));
        let b = Expr::var(pool.var("b"));
        let c = Expr::var(pool.var("c"));
        (pool, a, b, c)
    }

    #[test]
    fn idempotence() {
        let (_, a, b, _) = vars();
        let e = Expr::And(vec![a.clone(), a.clone(), b.clone()]);
        assert_eq!(simplify(&e), Expr::and([a, b]));
    }

    #[test]
    fn complement_collapses() {
        let (_, a, b, _) = vars();
        let e = Expr::And(vec![a.clone(), Expr::not(a.clone()), b.clone()]);
        assert_eq!(simplify(&e), Expr::FALSE);
        let e = Expr::Or(vec![a.clone(), Expr::not(a.clone()), b]);
        assert_eq!(simplify(&e), Expr::TRUE);
    }

    #[test]
    fn absorption() {
        let (_, a, b, _) = vars();
        let e = Expr::And(vec![a.clone(), Expr::or([a.clone(), b.clone()])]);
        assert_eq!(simplify(&e), a.clone());
        let e = Expr::Or(vec![a.clone(), Expr::and([a.clone(), b])]);
        assert_eq!(simplify(&e), a);
    }

    #[test]
    fn iff_and_xor_special_cases() {
        let (_, a, _, _) = vars();
        assert_eq!(
            simplify(&Expr::Iff(a.clone().into(), a.clone().into())),
            Expr::TRUE
        );
        assert_eq!(
            simplify(&Expr::Xor(a.clone().into(), a.clone().into())),
            Expr::FALSE
        );
        assert_eq!(
            simplify(&Expr::Iff(a.clone().into(), Expr::not(a.clone()).into())),
            Expr::FALSE
        );
        assert_eq!(
            simplify(&Expr::Xor(a.clone().into(), Expr::not(a.clone()).into())),
            Expr::TRUE
        );
    }

    #[test]
    fn ite_identical_branches() {
        let (_, a, b, _) = vars();
        let e = Expr::Ite(a.into(), b.clone().into(), b.clone().into());
        assert_eq!(simplify(&e), b);
    }

    #[test]
    fn simplify_preserves_semantics_on_random_formulas() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        fn random_expr(rng: &mut StdRng, depth: usize, nvars: u32) -> Expr {
            if depth == 0 || rng.random_range(0..5) == 0 {
                return match rng.random_range(0..4) {
                    0 => Expr::TRUE,
                    1 => Expr::FALSE,
                    _ => Expr::var(VarId(rng.random_range(0..nvars))),
                };
            }
            match rng.random_range(0..6) {
                0 => Expr::not(random_expr(rng, depth - 1, nvars)),
                1 => Expr::And(vec![
                    random_expr(rng, depth - 1, nvars),
                    random_expr(rng, depth - 1, nvars),
                ]),
                2 => Expr::Or(vec![
                    random_expr(rng, depth - 1, nvars),
                    random_expr(rng, depth - 1, nvars),
                ]),
                3 => Expr::Implies(
                    random_expr(rng, depth - 1, nvars).into(),
                    random_expr(rng, depth - 1, nvars).into(),
                ),
                4 => Expr::Iff(
                    random_expr(rng, depth - 1, nvars).into(),
                    random_expr(rng, depth - 1, nvars).into(),
                ),
                _ => Expr::Xor(
                    random_expr(rng, depth - 1, nvars).into(),
                    random_expr(rng, depth - 1, nvars).into(),
                ),
            }
        }

        let mut rng = StdRng::seed_from_u64(0x1bc1);
        for _ in 0..200 {
            let e = random_expr(&mut rng, 4, 5);
            let s = simplify(&e);
            assert!(semantically_equal(&e, &s), "{e:?} simplified to {s:?}");
            assert!(s.node_count() <= e.node_count() + 1);
        }
    }

    #[test]
    fn simplify_is_idempotent_on_samples() {
        let (_, a, b, c) = vars();
        let e = Expr::Or(vec![
            Expr::And(vec![a.clone(), b.clone()]),
            Expr::And(vec![a.clone(), b.clone()]),
            c,
        ]);
        let once = simplify(&e);
        let twice = simplify(&once);
        assert_eq!(once, twice);
    }
}
