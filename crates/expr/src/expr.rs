//! The boolean expression AST and its fundamental operations.

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::env::{Assignment, EvalError};
use crate::vars::VarId;

/// A boolean expression over interned variables.
///
/// Expressions are immutable trees; n-ary conjunction and disjunction are kept
/// flat (`And`/`Or` carry a vector of operands) because interlock
/// specifications are naturally written as long conjunctions of stall rules
/// and long disjunctions of stall causes.
///
/// The smart constructors ([`Expr::and`], [`Expr::or`], [`Expr::not`], …)
/// perform the cheap, always-valid simplifications (constant absorption,
/// double negation, flattening); heavier rewriting lives in
/// [`crate::simplify`].
///
/// # Example
///
/// ```
/// use ipcl_expr::{Expr, VarPool};
///
/// let mut pool = VarPool::new();
/// let rtm = Expr::var(pool.var("long.3.rtm"));
/// let moe_next = Expr::var(pool.var("long.4.moe"));
/// let rule = Expr::implies(Expr::and([rtm, Expr::not(moe_next)]),
///                          Expr::not(Expr::var(pool.var("long.3.moe"))));
/// assert_eq!(rule.vars().len(), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Expr {
    /// A boolean constant.
    Const(bool),
    /// A variable reference.
    Var(VarId),
    /// Logical negation.
    Not(Arc<Expr>),
    /// N-ary conjunction. Empty conjunction is `true`.
    And(Vec<Expr>),
    /// N-ary disjunction. Empty disjunction is `false`.
    Or(Vec<Expr>),
    /// Implication `lhs → rhs`.
    Implies(Arc<Expr>, Arc<Expr>),
    /// Bi-implication `lhs ↔ rhs`.
    Iff(Arc<Expr>, Arc<Expr>),
    /// Exclusive or.
    Xor(Arc<Expr>, Arc<Expr>),
    /// If-then-else `cond ? then : els`.
    Ite(Arc<Expr>, Arc<Expr>, Arc<Expr>),
}

impl Expr {
    /// The constant `true`.
    pub const TRUE: Expr = Expr::Const(true);
    /// The constant `false`.
    pub const FALSE: Expr = Expr::Const(false);

    /// A variable reference.
    pub fn var(id: VarId) -> Expr {
        Expr::Var(id)
    }

    /// Negation with double-negation and constant elimination.
    ///
    /// (Deliberately an associated constructor like [`Expr::and`]/[`Expr::or`],
    /// not the `std::ops::Not` trait: it consumes by value and simplifies.)
    #[allow(clippy::should_implement_trait)]
    pub fn not(e: Expr) -> Expr {
        match e {
            Expr::Const(b) => Expr::Const(!b),
            Expr::Not(inner) => inner.as_ref().clone(),
            other => Expr::Not(Arc::new(other)),
        }
    }

    /// N-ary conjunction with flattening and constant absorption.
    ///
    /// `and([])` is `true`; any `false` operand collapses the result.
    pub fn and<I: IntoIterator<Item = Expr>>(operands: I) -> Expr {
        let mut flat = Vec::new();
        for op in operands {
            match op {
                Expr::Const(true) => {}
                Expr::Const(false) => return Expr::FALSE,
                Expr::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Expr::TRUE,
            1 => flat.pop().expect("length checked"),
            _ => Expr::And(flat),
        }
    }

    /// N-ary disjunction with flattening and constant absorption.
    ///
    /// `or([])` is `false`; any `true` operand collapses the result.
    pub fn or<I: IntoIterator<Item = Expr>>(operands: I) -> Expr {
        let mut flat = Vec::new();
        for op in operands {
            match op {
                Expr::Const(false) => {}
                Expr::Const(true) => return Expr::TRUE,
                Expr::Or(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Expr::FALSE,
            1 => flat.pop().expect("length checked"),
            _ => Expr::Or(flat),
        }
    }

    /// Implication `lhs → rhs` with constant short-circuiting.
    pub fn implies(lhs: Expr, rhs: Expr) -> Expr {
        match (&lhs, &rhs) {
            (Expr::Const(false), _) | (_, Expr::Const(true)) => Expr::TRUE,
            (Expr::Const(true), _) => rhs,
            (_, Expr::Const(false)) => Expr::not(lhs),
            _ => Expr::Implies(Arc::new(lhs), Arc::new(rhs)),
        }
    }

    /// Bi-implication `lhs ↔ rhs` with constant short-circuiting.
    pub fn iff(lhs: Expr, rhs: Expr) -> Expr {
        match (&lhs, &rhs) {
            (Expr::Const(true), _) => rhs,
            (_, Expr::Const(true)) => lhs,
            (Expr::Const(false), _) => Expr::not(rhs),
            (_, Expr::Const(false)) => Expr::not(lhs),
            _ => Expr::Iff(Arc::new(lhs), Arc::new(rhs)),
        }
    }

    /// Exclusive or with constant short-circuiting.
    pub fn xor(lhs: Expr, rhs: Expr) -> Expr {
        match (&lhs, &rhs) {
            (Expr::Const(false), _) => rhs,
            (_, Expr::Const(false)) => lhs,
            (Expr::Const(true), _) => Expr::not(rhs),
            (_, Expr::Const(true)) => Expr::not(lhs),
            _ => Expr::Xor(Arc::new(lhs), Arc::new(rhs)),
        }
    }

    /// If-then-else with constant short-circuiting on the condition.
    pub fn ite(cond: Expr, then: Expr, els: Expr) -> Expr {
        match cond {
            Expr::Const(true) => then,
            Expr::Const(false) => els,
            c => Expr::Ite(Arc::new(c), Arc::new(then), Arc::new(els)),
        }
    }

    /// Whether this expression is the constant `true`.
    pub fn is_true(&self) -> bool {
        matches!(self, Expr::Const(true))
    }

    /// Whether this expression is the constant `false`.
    pub fn is_false(&self) -> bool {
        matches!(self, Expr::Const(false))
    }

    /// Evaluates the expression under `env`.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::Unassigned`] if a variable of the expression has no
    /// value in `env`.
    pub fn eval(&self, env: &Assignment) -> Result<bool, EvalError> {
        match self {
            Expr::Const(b) => Ok(*b),
            Expr::Var(v) => env.get(*v).ok_or(EvalError::Unassigned(*v)),
            Expr::Not(e) => Ok(!e.eval(env)?),
            Expr::And(ops) => {
                for op in ops {
                    if !op.eval(env)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Expr::Or(ops) => {
                for op in ops {
                    if op.eval(env)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Expr::Implies(l, r) => Ok(!l.eval(env)? || r.eval(env)?),
            Expr::Iff(l, r) => Ok(l.eval(env)? == r.eval(env)?),
            Expr::Xor(l, r) => Ok(l.eval(env)? != r.eval(env)?),
            Expr::Ite(c, t, e) => {
                if c.eval(env)? {
                    t.eval(env)
                } else {
                    e.eval(env)
                }
            }
        }
    }

    /// Evaluates the expression with a total valuation function.
    ///
    /// This is the hot path of the fixed-point engine, so it never allocates.
    pub fn eval_with<F: Fn(VarId) -> bool + Copy>(&self, valuation: F) -> bool {
        match self {
            Expr::Const(b) => *b,
            Expr::Var(v) => valuation(*v),
            Expr::Not(e) => !e.eval_with(valuation),
            Expr::And(ops) => ops.iter().all(|op| op.eval_with(valuation)),
            Expr::Or(ops) => ops.iter().any(|op| op.eval_with(valuation)),
            Expr::Implies(l, r) => !l.eval_with(valuation) || r.eval_with(valuation),
            Expr::Iff(l, r) => l.eval_with(valuation) == r.eval_with(valuation),
            Expr::Xor(l, r) => l.eval_with(valuation) != r.eval_with(valuation),
            Expr::Ite(c, t, e) => {
                if c.eval_with(valuation) {
                    t.eval_with(valuation)
                } else {
                    e.eval_with(valuation)
                }
            }
        }
    }

    /// The set of variables occurring in the expression.
    pub fn vars(&self) -> BTreeSet<VarId> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    /// Collects variables into `out` without allocating a fresh set.
    pub fn collect_vars(&self, out: &mut BTreeSet<VarId>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(v) => {
                out.insert(*v);
            }
            Expr::Not(e) => e.collect_vars(out),
            Expr::And(ops) | Expr::Or(ops) => {
                for op in ops {
                    op.collect_vars(out);
                }
            }
            Expr::Implies(l, r) | Expr::Iff(l, r) | Expr::Xor(l, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
            Expr::Ite(c, t, e) => {
                c.collect_vars(out);
                t.collect_vars(out);
                e.collect_vars(out);
            }
        }
    }

    /// Number of AST nodes (a rough size metric used by benchmarks).
    pub fn node_count(&self) -> usize {
        1 + match self {
            Expr::Const(_) | Expr::Var(_) => 0,
            Expr::Not(e) => e.node_count(),
            Expr::And(ops) | Expr::Or(ops) => ops.iter().map(Expr::node_count).sum(),
            Expr::Implies(l, r) | Expr::Iff(l, r) | Expr::Xor(l, r) => {
                l.node_count() + r.node_count()
            }
            Expr::Ite(c, t, e) => c.node_count() + t.node_count() + e.node_count(),
        }
    }

    /// Depth of the AST.
    pub fn depth(&self) -> usize {
        1 + match self {
            Expr::Const(_) | Expr::Var(_) => 0,
            Expr::Not(e) => e.depth(),
            Expr::And(ops) | Expr::Or(ops) => ops.iter().map(Expr::depth).max().unwrap_or(0),
            Expr::Implies(l, r) | Expr::Iff(l, r) | Expr::Xor(l, r) => l.depth().max(r.depth()),
            Expr::Ite(c, t, e) => c.depth().max(t.depth()).max(e.depth()),
        }
    }

    /// Substitutes every occurrence of the mapped variables by the given
    /// expressions, leaving other variables untouched.
    pub fn substitute(&self, map: &dyn Fn(VarId) -> Option<Expr>) -> Expr {
        match self {
            Expr::Const(_) => self.clone(),
            Expr::Var(v) => map(*v).unwrap_or_else(|| self.clone()),
            Expr::Not(e) => Expr::not(e.substitute(map)),
            Expr::And(ops) => Expr::and(ops.iter().map(|op| op.substitute(map))),
            Expr::Or(ops) => Expr::or(ops.iter().map(|op| op.substitute(map))),
            Expr::Implies(l, r) => Expr::implies(l.substitute(map), r.substitute(map)),
            Expr::Iff(l, r) => Expr::iff(l.substitute(map), r.substitute(map)),
            Expr::Xor(l, r) => Expr::xor(l.substitute(map), r.substitute(map)),
            Expr::Ite(c, t, e) => {
                Expr::ite(c.substitute(map), t.substitute(map), e.substitute(map))
            }
        }
    }

    /// Positive/negative cofactor: substitutes `var := value` and folds
    /// constants.
    pub fn cofactor(&self, var: VarId, value: bool) -> Expr {
        self.substitute(&|v| (v == var).then_some(Expr::Const(value)))
    }

    /// Rewrites implication, bi-implication, xor and ite into ∧/∨/¬ form.
    ///
    /// The result is semantically equal and is the form the polarity analysis
    /// and the NNF/CNF conversions operate on.
    pub fn desugar(&self) -> Expr {
        match self {
            Expr::Const(_) | Expr::Var(_) => self.clone(),
            Expr::Not(e) => Expr::not(e.desugar()),
            Expr::And(ops) => Expr::and(ops.iter().map(Expr::desugar)),
            Expr::Or(ops) => Expr::or(ops.iter().map(Expr::desugar)),
            Expr::Implies(l, r) => Expr::or([Expr::not(l.desugar()), r.desugar()]),
            Expr::Iff(l, r) => {
                let (l, r) = (l.desugar(), r.desugar());
                Expr::and([
                    Expr::or([Expr::not(l.clone()), r.clone()]),
                    Expr::or([l, Expr::not(r)]),
                ])
            }
            Expr::Xor(l, r) => {
                let (l, r) = (l.desugar(), r.desugar());
                Expr::or([
                    Expr::and([l.clone(), Expr::not(r.clone())]),
                    Expr::and([Expr::not(l), r]),
                ])
            }
            Expr::Ite(c, t, e) => {
                let c = c.desugar();
                Expr::or([
                    Expr::and([c.clone(), t.desugar()]),
                    Expr::and([Expr::not(c), e.desugar()]),
                ])
            }
        }
    }

    /// Negation normal form: desugars and pushes negations to the leaves.
    pub fn to_nnf(&self) -> Expr {
        fn nnf(e: &Expr, negate: bool) -> Expr {
            match e {
                Expr::Const(b) => Expr::Const(*b != negate),
                Expr::Var(v) => {
                    if negate {
                        Expr::Not(Arc::new(Expr::Var(*v)))
                    } else {
                        Expr::Var(*v)
                    }
                }
                Expr::Not(inner) => nnf(inner, !negate),
                Expr::And(ops) => {
                    let children = ops.iter().map(|op| nnf(op, negate));
                    if negate {
                        Expr::or(children)
                    } else {
                        Expr::and(children)
                    }
                }
                Expr::Or(ops) => {
                    let children = ops.iter().map(|op| nnf(op, negate));
                    if negate {
                        Expr::and(children)
                    } else {
                        Expr::or(children)
                    }
                }
                other => nnf(&other.desugar(), negate),
            }
        }
        nnf(self, false)
    }
}

impl Default for Expr {
    /// The default expression is `true` (the empty conjunction), matching the
    /// identity of specification conjunction.
    fn default() -> Self {
        Expr::TRUE
    }
}

impl From<bool> for Expr {
    fn from(b: bool) -> Self {
        Expr::Const(b)
    }
}

impl From<VarId> for Expr {
    fn from(v: VarId) -> Self {
        Expr::Var(v)
    }
}

/// Exhaustively checks semantic equality of two expressions over the union of
/// their variables.
///
/// Intended for tests and for the small specification formulas of this domain
/// (the cost is `2^n` evaluations); larger equivalences should go through
/// `ipcl-bdd` or `ipcl-sat`.
pub fn semantically_equal(a: &Expr, b: &Expr) -> bool {
    let mut vars: Vec<VarId> = a.vars().union(&b.vars()).copied().collect();
    vars.sort_unstable();
    assert!(
        vars.len() <= 24,
        "semantically_equal is exponential; got {} variables",
        vars.len()
    );
    for mask in 0u64..(1u64 << vars.len()) {
        let valuation = |v: VarId| {
            let pos = vars.iter().position(|&x| x == v).expect("var in union");
            mask & (1 << pos) != 0
        };
        if a.eval_with(valuation) != b.eval_with(valuation) {
            return false;
        }
    }
    true
}

/// Exhaustively checks that `a → b` is valid (every model of `a` satisfies `b`).
///
/// Same cost caveat as [`semantically_equal`].
pub fn semantically_implies(a: &Expr, b: &Expr) -> bool {
    semantically_equal(&Expr::implies(a.clone(), b.clone()), &Expr::TRUE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vars::VarPool;

    fn abc() -> (VarPool, VarId, VarId, VarId) {
        let mut pool = VarPool::new();
        let a = pool.var("a");
        let b = pool.var("b");
        let c = pool.var("c");
        (pool, a, b, c)
    }

    #[test]
    fn smart_constructors_fold_constants() {
        let (_, a, _, _) = abc();
        assert_eq!(Expr::and([Expr::TRUE, Expr::var(a)]), Expr::var(a));
        assert_eq!(Expr::and([Expr::FALSE, Expr::var(a)]), Expr::FALSE);
        assert_eq!(Expr::or([Expr::FALSE, Expr::var(a)]), Expr::var(a));
        assert_eq!(Expr::or([Expr::TRUE, Expr::var(a)]), Expr::TRUE);
        assert_eq!(Expr::and::<[Expr; 0]>([]), Expr::TRUE);
        assert_eq!(Expr::or::<[Expr; 0]>([]), Expr::FALSE);
        assert_eq!(Expr::not(Expr::not(Expr::var(a))), Expr::var(a));
        assert_eq!(Expr::not(Expr::TRUE), Expr::FALSE);
        assert_eq!(Expr::implies(Expr::FALSE, Expr::var(a)), Expr::TRUE);
        assert_eq!(Expr::implies(Expr::var(a), Expr::TRUE), Expr::TRUE);
        assert_eq!(Expr::implies(Expr::TRUE, Expr::var(a)), Expr::var(a));
        assert_eq!(
            Expr::implies(Expr::var(a), Expr::FALSE),
            Expr::not(Expr::var(a))
        );
        assert_eq!(Expr::iff(Expr::TRUE, Expr::var(a)), Expr::var(a));
        assert_eq!(Expr::xor(Expr::FALSE, Expr::var(a)), Expr::var(a));
        assert_eq!(
            Expr::ite(Expr::TRUE, Expr::var(a), Expr::FALSE),
            Expr::var(a)
        );
    }

    #[test]
    fn nary_flattening() {
        let (_, a, b, c) = abc();
        let e = Expr::and([Expr::and([Expr::var(a), Expr::var(b)]), Expr::var(c)]);
        assert_eq!(e, Expr::And(vec![Expr::var(a), Expr::var(b), Expr::var(c)]));
        let e = Expr::or([Expr::or([Expr::var(a), Expr::var(b)]), Expr::var(c)]);
        assert_eq!(e, Expr::Or(vec![Expr::var(a), Expr::var(b), Expr::var(c)]));
    }

    #[test]
    fn eval_all_connectives() {
        let (_, a, b, _) = abc();
        let mut env = Assignment::new();
        env.set(a, true);
        env.set(b, false);
        assert_eq!(Expr::var(a).eval(&env), Ok(true));
        assert_eq!(Expr::not(Expr::var(a)).eval(&env), Ok(false));
        assert_eq!(
            Expr::and([Expr::var(a), Expr::var(b)]).eval(&env),
            Ok(false)
        );
        assert_eq!(Expr::or([Expr::var(a), Expr::var(b)]).eval(&env), Ok(true));
        assert_eq!(
            Expr::implies(Expr::var(a), Expr::var(b)).eval(&env),
            Ok(false)
        );
        assert_eq!(Expr::iff(Expr::var(a), Expr::var(b)).eval(&env), Ok(false));
        assert_eq!(Expr::xor(Expr::var(a), Expr::var(b)).eval(&env), Ok(true));
        assert_eq!(
            Expr::ite(Expr::var(a), Expr::var(b), Expr::TRUE).eval(&env),
            Ok(false)
        );
    }

    #[test]
    fn eval_reports_unassigned() {
        let (_, a, b, _) = abc();
        let mut env = Assignment::new();
        env.set(a, true);
        assert_eq!(
            Expr::and([Expr::var(a), Expr::var(b)]).eval(&env),
            Err(EvalError::Unassigned(b))
        );
    }

    #[test]
    fn eval_with_matches_eval() {
        let (_, a, b, c) = abc();
        let e = Expr::implies(
            Expr::and([Expr::var(a), Expr::not(Expr::var(b))]),
            Expr::var(c),
        );
        for mask in 0..8u32 {
            let val = |v: VarId| mask & (1 << v.0) != 0;
            let mut env = Assignment::new();
            for v in [a, b, c] {
                env.set(v, val(v));
            }
            assert_eq!(e.eval(&env).unwrap(), e.eval_with(val));
        }
    }

    #[test]
    fn vars_and_metrics() {
        let (_, a, b, c) = abc();
        let e = Expr::ite(
            Expr::var(a),
            Expr::var(b),
            Expr::xor(Expr::var(c), Expr::var(a)),
        );
        let vars = e.vars();
        assert_eq!(vars.len(), 3);
        assert!(e.node_count() >= 5);
        assert!(e.depth() >= 2);
    }

    #[test]
    fn cofactor_shannon_expansion() {
        let (_, a, b, c) = abc();
        let e = Expr::or([
            Expr::and([Expr::var(a), Expr::var(b)]),
            Expr::and([Expr::not(Expr::var(a)), Expr::var(c)]),
        ]);
        // Shannon: e == ite(a, e|a=1, e|a=0)
        let expanded = Expr::ite(Expr::var(a), e.cofactor(a, true), e.cofactor(a, false));
        assert!(semantically_equal(&e, &expanded));
        assert!(semantically_equal(&e.cofactor(a, true), &Expr::var(b)));
        assert!(semantically_equal(&e.cofactor(a, false), &Expr::var(c)));
    }

    #[test]
    fn substitute_replaces_variables() {
        let (_, a, b, c) = abc();
        let e = Expr::and([Expr::var(a), Expr::var(b)]);
        let substituted = e.substitute(&|v| (v == a).then_some(Expr::var(c)));
        assert_eq!(substituted, Expr::and([Expr::var(c), Expr::var(b)]));
    }

    #[test]
    fn desugar_preserves_semantics() {
        let (_, a, b, c) = abc();
        let exprs = [
            Expr::implies(Expr::var(a), Expr::var(b)),
            Expr::iff(Expr::var(a), Expr::var(b)),
            Expr::xor(Expr::var(a), Expr::var(b)),
            Expr::ite(Expr::var(a), Expr::var(b), Expr::var(c)),
        ];
        for e in exprs {
            let d = e.desugar();
            assert!(semantically_equal(&e, &d), "{e:?} vs {d:?}");
            assert!(!matches!(
                d,
                Expr::Implies(..) | Expr::Iff(..) | Expr::Xor(..) | Expr::Ite(..)
            ));
        }
    }

    #[test]
    fn nnf_preserves_semantics_and_pushes_negation() {
        let (_, a, b, c) = abc();
        let e = Expr::not(Expr::implies(
            Expr::iff(Expr::var(a), Expr::var(b)),
            Expr::xor(Expr::var(b), Expr::var(c)),
        ));
        let n = e.to_nnf();
        assert!(semantically_equal(&e, &n));
        fn negations_only_on_leaves(e: &Expr) -> bool {
            match e {
                Expr::Not(inner) => matches!(inner.as_ref(), Expr::Var(_)),
                Expr::And(ops) | Expr::Or(ops) => ops.iter().all(negations_only_on_leaves),
                Expr::Const(_) | Expr::Var(_) => true,
                _ => false,
            }
        }
        assert!(negations_only_on_leaves(&n), "{n:?}");
    }

    #[test]
    fn semantic_helpers() {
        let (_, a, b, _) = abc();
        assert!(semantically_implies(
            &Expr::and([Expr::var(a), Expr::var(b)]),
            &Expr::var(a)
        ));
        assert!(!semantically_implies(
            &Expr::var(a),
            &Expr::and([Expr::var(a), Expr::var(b)])
        ));
    }

    #[test]
    fn conversions() {
        assert_eq!(Expr::from(true), Expr::TRUE);
        assert_eq!(Expr::from(VarId(3)), Expr::Var(VarId(3)));
        assert_eq!(Expr::default(), Expr::TRUE);
    }
}
