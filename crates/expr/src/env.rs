//! Assignments (partial valuations) of variables to boolean values.

use std::collections::BTreeMap;
use std::fmt;

use crate::vars::{VarId, VarPool};

/// Error produced when evaluating an expression under a partial assignment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EvalError {
    /// A variable required by the expression has no value.
    Unassigned(VarId),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Unassigned(v) => write!(f, "variable {v} has no assigned value"),
        }
    }
}

impl std::error::Error for EvalError {}

/// A partial mapping from variables to boolean values.
///
/// Assignments are the counterexamples reported by the checkers and the
/// per-cycle signal snapshots the simulation monitors evaluate assertions
/// over.
///
/// # Example
///
/// ```
/// use ipcl_expr::{Assignment, VarPool};
///
/// let mut pool = VarPool::new();
/// let moe = pool.var("long.1.moe");
/// let mut env = Assignment::new();
/// env.set(moe, false);
/// assert_eq!(env.get(moe), Some(false));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Assignment {
    values: BTreeMap<VarId, bool>,
}

impl Assignment {
    /// Creates an empty assignment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an assignment from `(variable, value)` pairs.
    pub fn from_pairs<I: IntoIterator<Item = (VarId, bool)>>(pairs: I) -> Self {
        Assignment {
            values: pairs.into_iter().collect(),
        }
    }

    /// Sets `var` to `value`, returning the previous value if any.
    pub fn set(&mut self, var: VarId, value: bool) -> Option<bool> {
        self.values.insert(var, value)
    }

    /// Removes the value of `var`, returning it if it was set.
    pub fn unset(&mut self, var: VarId) -> Option<bool> {
        self.values.remove(&var)
    }

    /// The value of `var`, if assigned.
    pub fn get(&self, var: VarId) -> Option<bool> {
        self.values.get(&var).copied()
    }

    /// The value of `var`, defaulting to `false` when unassigned.
    ///
    /// Matches hardware semantics where an unconnected control signal reads as
    /// logic zero.
    pub fn get_or_false(&self, var: VarId) -> bool {
        self.get(var).unwrap_or(false)
    }

    /// Whether `var` has a value.
    pub fn contains(&self, var: VarId) -> bool {
        self.values.contains_key(&var)
    }

    /// Number of assigned variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no variable is assigned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(variable, value)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, bool)> + '_ {
        self.values.iter().map(|(&v, &b)| (v, b))
    }

    /// Merges `other` into `self`; values in `other` win on conflict.
    pub fn extend_from(&mut self, other: &Assignment) {
        for (v, b) in other.iter() {
            self.values.insert(v, b);
        }
    }

    /// Renders the assignment with human-readable variable names.
    pub fn display_with<'a>(&'a self, pool: &'a VarPool) -> DisplayAssignment<'a> {
        DisplayAssignment { env: self, pool }
    }
}

impl FromIterator<(VarId, bool)> for Assignment {
    fn from_iter<I: IntoIterator<Item = (VarId, bool)>>(iter: I) -> Self {
        Assignment::from_pairs(iter)
    }
}

impl Extend<(VarId, bool)> for Assignment {
    fn extend<I: IntoIterator<Item = (VarId, bool)>>(&mut self, iter: I) {
        for (v, b) in iter {
            self.values.insert(v, b);
        }
    }
}

/// Helper returned by [`Assignment::display_with`].
#[derive(Debug)]
pub struct DisplayAssignment<'a> {
    env: &'a Assignment,
    pool: &'a VarPool,
}

impl fmt::Display for DisplayAssignment<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        write!(f, "{{")?;
        for (v, b) in self.env.iter() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(
                f,
                "{}={}",
                self.pool.name_or_fallback(v),
                if b { 1 } else { 0 }
            )?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_unset() {
        let mut env = Assignment::new();
        assert!(env.is_empty());
        assert_eq!(env.set(VarId(1), true), None);
        assert_eq!(env.set(VarId(1), false), Some(true));
        assert_eq!(env.get(VarId(1)), Some(false));
        assert_eq!(env.get(VarId(2)), None);
        assert!(!env.get_or_false(VarId(2)));
        assert!(env.contains(VarId(1)));
        assert_eq!(env.len(), 1);
        assert_eq!(env.unset(VarId(1)), Some(false));
        assert!(env.is_empty());
    }

    #[test]
    fn from_pairs_and_iter() {
        let env = Assignment::from_pairs([(VarId(2), true), (VarId(0), false)]);
        let pairs: Vec<(VarId, bool)> = env.iter().collect();
        assert_eq!(pairs, vec![(VarId(0), false), (VarId(2), true)]);
        let collected: Assignment = pairs.into_iter().collect();
        assert_eq!(collected, env);
    }

    #[test]
    fn extend_overwrites() {
        let mut a = Assignment::from_pairs([(VarId(0), false)]);
        let b = Assignment::from_pairs([(VarId(0), true), (VarId(1), true)]);
        a.extend_from(&b);
        assert_eq!(a.get(VarId(0)), Some(true));
        assert_eq!(a.get(VarId(1)), Some(true));
        let mut c = Assignment::new();
        c.extend([(VarId(5), true)]);
        assert_eq!(c.get(VarId(5)), Some(true));
    }

    #[test]
    fn display_with_names() {
        let mut pool = VarPool::new();
        let a = pool.var("long.1.moe");
        let b = pool.var("op_is_wait");
        let env = Assignment::from_pairs([(a, true), (b, false)]);
        let s = env.display_with(&pool).to_string();
        assert_eq!(s, "{long.1.moe=1, op_is_wait=0}");
    }

    #[test]
    fn eval_error_display() {
        let err = EvalError::Unassigned(VarId(3));
        assert!(err.to_string().contains("v3"));
    }
}
