//! Pretty printing of expressions in the textual specification syntax.
//!
//! The printed form round-trips through [`crate::parser::parse_expr`]:
//! `parse(print(e))` is semantically equal to `e`.

use std::fmt;

use crate::expr::Expr;
use crate::vars::VarPool;

/// Operator precedence used by both the printer and the parser.
///
/// Higher binds tighter. `¬` > `∧` > `∨` > `→` > `↔`.
pub(crate) fn precedence(expr: &Expr) -> u8 {
    match expr {
        Expr::Const(_) | Expr::Var(_) => 6,
        Expr::Not(_) => 5,
        Expr::And(_) => 4,
        Expr::Xor(_, _) => 3,
        Expr::Or(_) => 3,
        Expr::Implies(_, _) => 2,
        Expr::Iff(_, _) => 1,
        Expr::Ite(_, _, _) => 0,
    }
}

/// Display adaptor produced by [`Expr::display`].
#[derive(Debug)]
pub struct DisplayExpr<'a> {
    expr: &'a Expr,
    pool: &'a VarPool,
}

impl Expr {
    /// Renders the expression using the variable names in `pool`.
    ///
    /// # Example
    ///
    /// ```
    /// use ipcl_expr::{Expr, VarPool};
    ///
    /// let mut pool = VarPool::new();
    /// let a = Expr::var(pool.var("a"));
    /// let b = Expr::var(pool.var("b"));
    /// let e = Expr::implies(Expr::and([a, Expr::not(b)]), Expr::FALSE);
    /// assert_eq!(e.display(&pool).to_string(), "!(a & !b)");
    /// ```
    pub fn display<'a>(&'a self, pool: &'a VarPool) -> DisplayExpr<'a> {
        DisplayExpr { expr: self, pool }
    }
}

impl fmt::Display for DisplayExpr<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_expr(f, self.expr, self.pool, 0)
    }
}

fn write_child(
    f: &mut fmt::Formatter<'_>,
    child: &Expr,
    pool: &VarPool,
    parent_prec: u8,
) -> fmt::Result {
    if precedence(child) < parent_prec {
        write!(f, "(")?;
        write_expr(f, child, pool, 0)?;
        write!(f, ")")
    } else {
        write_expr(f, child, pool, parent_prec)
    }
}

fn write_expr(f: &mut fmt::Formatter<'_>, expr: &Expr, pool: &VarPool, _min: u8) -> fmt::Result {
    match expr {
        Expr::Const(true) => write!(f, "true"),
        Expr::Const(false) => write!(f, "false"),
        Expr::Var(v) => write!(f, "{}", pool.name_or_fallback(*v)),
        Expr::Not(e) => {
            write!(f, "!")?;
            // Negation binds tighter than everything, so parenthesise any
            // non-atomic child.
            if precedence(e) < 5 {
                write!(f, "(")?;
                write_expr(f, e, pool, 0)?;
                write!(f, ")")
            } else {
                write_expr(f, e, pool, 5)
            }
        }
        Expr::And(ops) => {
            for (i, op) in ops.iter().enumerate() {
                if i > 0 {
                    write!(f, " & ")?;
                }
                write_child(f, op, pool, 5)?;
            }
            Ok(())
        }
        Expr::Or(ops) => {
            for (i, op) in ops.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write_child(f, op, pool, 4)?;
            }
            Ok(())
        }
        Expr::Xor(l, r) => {
            write_child(f, l, pool, 4)?;
            write!(f, " ^ ")?;
            write_child(f, r, pool, 4)
        }
        Expr::Implies(l, r) => {
            // Implication is right-associative; require strictly higher
            // precedence on the left.
            write_child(f, l, pool, 3)?;
            write!(f, " -> ")?;
            write_child(f, r, pool, 2)
        }
        Expr::Iff(l, r) => {
            write_child(f, l, pool, 2)?;
            write!(f, " <-> ")?;
            write_child(f, r, pool, 2)
        }
        Expr::Ite(c, t, e) => {
            write!(f, "if ")?;
            write_child(f, c, pool, 1)?;
            write!(f, " then ")?;
            write_child(f, t, pool, 1)?;
            write!(f, " else ")?;
            write_child(f, e, pool, 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;
    use crate::vars::VarPool;

    fn roundtrip(text: &str) {
        let mut pool = VarPool::new();
        let e = parse_expr(text, &mut pool).unwrap();
        let printed = e.display(&pool).to_string();
        let reparsed = parse_expr(&printed, &mut pool).unwrap();
        assert!(
            crate::expr::semantically_equal(&e, &reparsed),
            "{text} printed as {printed}"
        );
    }

    #[test]
    fn constants_and_vars() {
        let mut pool = VarPool::new();
        let a = Expr::var(pool.var("long.1.moe"));
        assert_eq!(Expr::TRUE.display(&pool).to_string(), "true");
        assert_eq!(Expr::FALSE.display(&pool).to_string(), "false");
        assert_eq!(a.display(&pool).to_string(), "long.1.moe");
    }

    #[test]
    fn parenthesisation_of_or_under_and() {
        let mut pool = VarPool::new();
        let a = Expr::var(pool.var("a"));
        let b = Expr::var(pool.var("b"));
        let c = Expr::var(pool.var("c"));
        let e = Expr::and([Expr::or([a, b]), c]);
        assert_eq!(e.display(&pool).to_string(), "(a | b) & c");
    }

    #[test]
    fn negation_of_compound() {
        let mut pool = VarPool::new();
        let a = Expr::var(pool.var("a"));
        let b = Expr::var(pool.var("b"));
        let e = Expr::Not(Expr::and([a, b]).into());
        assert_eq!(e.display(&pool).to_string(), "!(a & b)");
    }

    #[test]
    fn implication_chain() {
        let mut pool = VarPool::new();
        let a = Expr::var(pool.var("a"));
        let b = Expr::var(pool.var("b"));
        let c = Expr::var(pool.var("c"));
        let e = Expr::Implies(a.into(), Expr::Implies(b.into(), c.into()).into());
        assert_eq!(e.display(&pool).to_string(), "a -> b -> c");
    }

    #[test]
    fn printed_form_reparses_semantically_equal() {
        for text in [
            "a",
            "!a",
            "a & b & c",
            "a | b & c",
            "(a | b) & c",
            "a -> !b -> c",
            "a <-> b | c",
            "a ^ b ^ c",
            "if a then b else c & d",
            "!(a -> b)",
            "a & (b -> c) | !d",
        ] {
            roundtrip(text);
        }
    }
}
