//! Polarity and monotonicity analysis.
//!
//! The derivation in the paper requires each stalling condition `F_i` to be
//! *monotone* in the negated `moe` flags: `F_i` is built from conjunction and
//! disjunction only, so making more inputs true can only make the output true.
//! This module provides the syntactic check (occurrence polarity) and a
//! semantic check (exhaustive, for small formulas) that `ipcl-core` uses to
//! validate specification preconditions before running the fixed point.

use std::collections::BTreeMap;

use crate::expr::Expr;
use crate::vars::VarId;

/// Occurrence polarity of a variable within an expression.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Polarity {
    /// The variable only occurs under an even number of negations.
    Positive,
    /// The variable only occurs under an odd number of negations.
    Negative,
    /// The variable occurs with both polarities.
    Mixed,
}

impl Polarity {
    fn join(self, other: Polarity) -> Polarity {
        if self == other {
            self
        } else {
            Polarity::Mixed
        }
    }

    /// Whether this polarity is compatible with monotone (non-decreasing)
    /// dependence on the variable.
    pub fn is_monotone_increasing(self) -> bool {
        matches!(self, Polarity::Positive)
    }

    /// Whether this polarity is compatible with antitone (non-increasing)
    /// dependence on the variable.
    pub fn is_monotone_decreasing(self) -> bool {
        matches!(self, Polarity::Negative)
    }
}

/// Computes the occurrence polarity of every variable in `expr`.
///
/// The expression is desugared first, so implications and bi-implications are
/// accounted for correctly (the antecedent of an implication is a negative
/// position; both sides of a bi-implication are mixed unless trivial).
///
/// # Example
///
/// ```
/// use ipcl_expr::{parse_expr, polarity_map, Polarity, VarPool};
///
/// let mut pool = VarPool::new();
/// let e = parse_expr("a & !b -> c", &mut pool).unwrap();
/// let map = polarity_map(&e);
/// assert_eq!(map[&pool.lookup("a").unwrap()], Polarity::Negative);
/// assert_eq!(map[&pool.lookup("b").unwrap()], Polarity::Positive);
/// assert_eq!(map[&pool.lookup("c").unwrap()], Polarity::Positive);
/// ```
pub fn polarity_map(expr: &Expr) -> BTreeMap<VarId, Polarity> {
    let mut map = BTreeMap::new();
    walk(&expr.desugar(), false, &mut map);
    map
}

fn walk(expr: &Expr, negated: bool, map: &mut BTreeMap<VarId, Polarity>) {
    match expr {
        Expr::Const(_) => {}
        Expr::Var(v) => {
            let p = if negated {
                Polarity::Negative
            } else {
                Polarity::Positive
            };
            map.entry(*v)
                .and_modify(|existing| *existing = existing.join(p))
                .or_insert(p);
        }
        Expr::Not(inner) => walk(inner, !negated, map),
        Expr::And(ops) | Expr::Or(ops) => {
            for op in ops {
                walk(op, negated, map);
            }
        }
        // Desugared expressions no longer contain these, but handle them for
        // robustness when callers skip desugaring.
        Expr::Implies(l, r) => {
            walk(l, !negated, map);
            walk(r, negated, map);
        }
        Expr::Iff(l, r) | Expr::Xor(l, r) => {
            walk(l, negated, map);
            walk(l, !negated, map);
            walk(r, negated, map);
            walk(r, !negated, map);
        }
        Expr::Ite(c, t, e) => {
            walk(c, negated, map);
            walk(c, !negated, map);
            walk(t, negated, map);
            walk(e, negated, map);
        }
    }
}

/// Syntactic monotonicity: `expr` mentions each of `vars` only positively.
///
/// This is the precondition established in Section 3.1 of the paper for the
/// stalling conditions `F_i` viewed as functions of the negated `moe` flags.
pub fn is_syntactically_monotone<'a, I>(expr: &Expr, vars: I) -> bool
where
    I: IntoIterator<Item = &'a VarId>,
{
    let map = polarity_map(expr);
    vars.into_iter().all(|v| {
        map.get(v)
            .map(|p| p.is_monotone_increasing())
            // A variable that does not occur is trivially monotone.
            .unwrap_or(true)
    })
}

/// Semantic monotonicity in a single variable, checked exhaustively over the
/// other variables of the expression.
///
/// # Panics
///
/// Panics if the expression has more than 22 variables (the check is
/// exponential and intended for specification-sized formulas and tests).
pub fn is_semantically_monotone_in(expr: &Expr, var: VarId) -> bool {
    let mut others: Vec<VarId> = expr.vars().into_iter().filter(|&v| v != var).collect();
    others.sort_unstable();
    assert!(
        others.len() <= 22,
        "semantic monotonicity check is exponential; got {} variables",
        others.len()
    );
    for mask in 0u64..(1u64 << others.len()) {
        let base = |v: VarId| {
            others
                .iter()
                .position(|&x| x == v)
                .map(|pos| mask & (1 << pos) != 0)
                .unwrap_or(false)
        };
        let low = expr.eval_with(|v| if v == var { false } else { base(v) });
        let high = expr.eval_with(|v| if v == var { true } else { base(v) });
        if low && !high {
            return false;
        }
    }
    true
}

/// Semantic monotonicity in every variable of `vars`.
pub fn is_semantically_monotone<'a, I>(expr: &Expr, vars: I) -> bool
where
    I: IntoIterator<Item = &'a VarId>,
{
    vars.into_iter()
        .all(|&v| is_semantically_monotone_in(expr, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vars::VarPool;

    fn vars3() -> (VarPool, VarId, VarId, VarId) {
        let mut pool = VarPool::new();
        let a = pool.var("a");
        let b = pool.var("b");
        let c = pool.var("c");
        (pool, a, b, c)
    }

    #[test]
    fn pure_and_or_is_positive() {
        let (_, a, b, c) = vars3();
        let e = Expr::or([Expr::and([Expr::var(a), Expr::var(b)]), Expr::var(c)]);
        let map = polarity_map(&e);
        assert!(map.values().all(|p| *p == Polarity::Positive));
        assert!(is_syntactically_monotone(&e, &[a, b, c]));
        assert!(is_semantically_monotone(&e, &[a, b, c]));
    }

    #[test]
    fn negation_flips_polarity() {
        let (_, a, b, _) = vars3();
        let e = Expr::and([Expr::var(a), Expr::not(Expr::var(b))]);
        let map = polarity_map(&e);
        assert_eq!(map[&a], Polarity::Positive);
        assert_eq!(map[&b], Polarity::Negative);
        assert!(!is_syntactically_monotone(&e, &[b]));
        assert!(is_syntactically_monotone(&e, &[a]));
        assert!(!is_semantically_monotone_in(&e, b));
    }

    #[test]
    fn implication_antecedent_is_negative() {
        let (_, a, b, _) = vars3();
        let e = Expr::implies(Expr::var(a), Expr::var(b));
        let map = polarity_map(&e);
        assert_eq!(map[&a], Polarity::Negative);
        assert_eq!(map[&b], Polarity::Positive);
    }

    #[test]
    fn iff_is_mixed() {
        let (_, a, b, _) = vars3();
        let e = Expr::iff(Expr::var(a), Expr::var(b));
        let map = polarity_map(&e);
        assert_eq!(map[&a], Polarity::Mixed);
        assert_eq!(map[&b], Polarity::Mixed);
        assert!(!is_semantically_monotone_in(&e, a));
    }

    #[test]
    fn xor_is_not_monotone_semantically() {
        let (_, a, b, _) = vars3();
        let e = Expr::xor(Expr::var(a), Expr::var(b));
        assert!(!is_semantically_monotone_in(&e, a));
        assert!(!is_semantically_monotone_in(&e, b));
    }

    #[test]
    fn unused_variable_is_trivially_monotone() {
        let (_, a, b, c) = vars3();
        let e = Expr::and([Expr::var(a), Expr::var(b)]);
        assert!(is_syntactically_monotone(&e, &[c]));
        assert!(is_semantically_monotone_in(&e, c));
    }

    #[test]
    fn syntactic_monotone_implies_semantic_on_samples() {
        // a & (b | !c) : monotone in a and b syntactically and semantically.
        let (_, a, b, c) = vars3();
        let e = Expr::and([
            Expr::var(a),
            Expr::or([Expr::var(b), Expr::not(Expr::var(c))]),
        ]);
        assert!(is_syntactically_monotone(&e, &[a, b]));
        assert!(is_semantically_monotone(&e, &[a, b]));
        // Semantic check can accept cases the syntactic check rejects:
        // (a & !a) is constant false, monotone in a semantically.
        let weird = Expr::And(vec![Expr::var(a), Expr::Not(Expr::var(a).into())]);
        assert!(!is_syntactically_monotone(&weird, &[a]));
        assert!(is_semantically_monotone_in(&weird, a));
    }

    #[test]
    fn ite_polarity_conservative() {
        let (_, a, b, c) = vars3();
        let e = Expr::ite(Expr::var(a), Expr::var(b), Expr::var(c));
        let map = polarity_map(&e);
        assert_eq!(map[&a], Polarity::Mixed);
        assert_eq!(map[&b], Polarity::Positive);
        assert_eq!(map[&c], Polarity::Positive);
    }
}
