//! Model counting and model enumeration over BDDs.
//!
//! The property checker uses [`BddManager::any_model`] to extract a single
//! counterexample (an unnecessary-stall witness) and [`ModelIter`] /
//! [`BddManager::sat_count`] to quantify how many signal combinations violate
//! a performance specification.

use std::collections::HashMap;

use ipcl_expr::{Assignment, VarId};

use crate::manager::{BddManager, BddRef};

impl BddManager {
    /// Number of satisfying assignments of `f` over the given variable set.
    ///
    /// `over` must contain the support of `f`; variables in `over` that `f`
    /// does not depend on are free and double the count.
    ///
    /// # Panics
    ///
    /// Panics if `over` omits a variable in the support of `f` or lists more
    /// than 127 variables (the count is returned as `u128`).
    pub fn sat_count(&self, f: BddRef, over: &[VarId]) -> u128 {
        assert!(over.len() < 128, "sat_count limited to 127 variables");
        let support = self.support(f);
        for v in &support {
            assert!(
                over.contains(v),
                "variable set for sat_count must cover the support"
            );
        }
        // Map each variable to its position in a virtual order of `over`
        // sorted by BDD level, so free variables between levels are counted.
        let mut order: Vec<VarId> = over.to_vec();
        order.sort_by_key(|v| self.level_of_var(*v).unwrap_or(u32::MAX));
        let position: HashMap<VarId, usize> =
            order.iter().enumerate().map(|(i, &v)| (v, i)).collect();

        let mut cache: HashMap<BddRef, u128> = HashMap::new();
        let total_positions = order.len();

        self.count_rec(f, 0, total_positions, &position, &mut cache)
    }

    fn level_of_var(&self, var: VarId) -> Option<u32> {
        self.order()
            .iter()
            .position(|&v| v == var)
            .map(|p| p as u32)
    }

    fn count_rec(
        &self,
        f: BddRef,
        from_position: usize,
        total: usize,
        position: &HashMap<VarId, usize>,
        cache: &mut HashMap<BddRef, u128>,
    ) -> u128 {
        if f == BddRef::FALSE {
            return 0;
        }
        if f == BddRef::TRUE {
            return 1u128 << (total - from_position);
        }
        let (level, low, high) = self.children(f).expect("non-terminal");
        let var = self.var_at_level(level).expect("registered variable");
        let here = position[&var];
        let skipped = (here - from_position) as u32;
        let below = if let Some(&cached) = cache.get(&f) {
            cached
        } else {
            let low_count = self.count_rec(low, here + 1, total, position, cache);
            let high_count = self.count_rec(high, here + 1, total, position, cache);
            let sum = low_count + high_count;
            cache.insert(f, sum);
            sum
        };
        below << skipped
    }

    /// A single satisfying assignment of `f` over its support, or `None` when
    /// `f` is the constant false.
    ///
    /// Variables not constrained on the chosen path are omitted from the
    /// returned assignment (any value works for them).
    pub fn any_model(&self, f: BddRef) -> Option<Assignment> {
        if f == BddRef::FALSE {
            return None;
        }
        let mut env = Assignment::new();
        let mut cursor = f;
        while let Some((level, low, high)) = self.children(cursor) {
            let var = self.var_at_level(level).expect("registered variable");
            if low != BddRef::FALSE {
                env.set(var, false);
                cursor = low;
            } else {
                env.set(var, true);
                cursor = high;
            }
        }
        Some(env)
    }

    /// Iterator over all satisfying assignments of `f` restricted to its
    /// support variables (free variables are omitted, i.e. each yielded
    /// assignment is a cube).
    pub fn models(&self, f: BddRef) -> ModelIter<'_> {
        ModelIter {
            mgr: self,
            stack: if f == BddRef::FALSE {
                Vec::new()
            } else {
                vec![(f, Assignment::new())]
            },
        }
    }
}

/// Iterator over satisfying cubes of a BDD, returned by [`BddManager::models`].
#[derive(Debug)]
pub struct ModelIter<'a> {
    mgr: &'a BddManager,
    stack: Vec<(BddRef, Assignment)>,
}

impl Iterator for ModelIter<'_> {
    type Item = Assignment;

    fn next(&mut self) -> Option<Self::Item> {
        while let Some((node, env)) = self.stack.pop() {
            match self.mgr.children(node) {
                None => {
                    if node == BddRef::TRUE {
                        return Some(env);
                    }
                }
                Some((level, low, high)) => {
                    let var = self.mgr.var_at_level(level).expect("registered variable");
                    if high != BddRef::FALSE {
                        let mut high_env = env.clone();
                        high_env.set(var, true);
                        self.stack.push((high, high_env));
                    }
                    if low != BddRef::FALSE {
                        let mut low_env = env;
                        low_env.set(var, false);
                        self.stack.push((low, low_env));
                    }
                }
            }
        }
        None
    }
}

impl BddManager {
    /// Evaluates `f` treating `cube` as a partial assignment: variables not in
    /// the cube may take any value, and the result is `true` iff every
    /// completion satisfies `f` along the cube path.
    ///
    /// Used by tests to validate cube enumeration; for total assignments use
    /// [`BddManager::eval`].
    pub fn eval_cube(&self, f: BddRef, cube: &Assignment) -> bool {
        let mut cursor = f;
        while let Some((level, low, high)) = self.children(cursor) {
            let var = self.var_at_level(level).expect("registered variable");
            match cube.get(var) {
                Some(true) => cursor = high,
                Some(false) => cursor = low,
                // Unconstrained by the cube: both branches must agree for the
                // cube to be a genuine implicant.
                None => {
                    return self.eval_cube(low, cube) && self.eval_cube(high, cube);
                }
            }
        }
        cursor == BddRef::TRUE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcl_expr::{parse_expr, VarPool};

    fn build(text: &str) -> (BddManager, BddRef, VarPool) {
        let mut pool = VarPool::new();
        let e = parse_expr(text, &mut pool).unwrap();
        let mut mgr = BddManager::new();
        let f = mgr.from_expr(&e);
        (mgr, f, pool)
    }

    #[test]
    fn sat_count_simple() {
        let (mgr, f, pool) = build("a & b");
        let vars: Vec<_> = pool.ids().collect();
        assert_eq!(mgr.sat_count(f, &vars), 1);
        let (mgr, f, pool) = build("a | b");
        let vars: Vec<_> = pool.ids().collect();
        assert_eq!(mgr.sat_count(f, &vars), 3);
        let (mgr, f, pool) = build("a ^ b ^ c");
        let vars: Vec<_> = pool.ids().collect();
        assert_eq!(mgr.sat_count(f, &vars), 4);
    }

    #[test]
    fn sat_count_with_free_variables() {
        let mut pool = VarPool::new();
        let e = parse_expr("a", &mut pool).unwrap();
        let free = pool.var("unused");
        let mut mgr = BddManager::new();
        let f = mgr.from_expr(&e);
        let a = pool.lookup("a").unwrap();
        assert_eq!(mgr.sat_count(f, &[a, free]), 2);
        assert_eq!(mgr.sat_count(f, &[a]), 1);
        assert_eq!(mgr.sat_count(BddRef::TRUE, &[a, free]), 4);
        assert_eq!(mgr.sat_count(BddRef::FALSE, &[a, free]), 0);
    }

    #[test]
    #[should_panic(expected = "cover the support")]
    fn sat_count_requires_support() {
        let (mgr, f, pool) = build("a & b");
        let a = pool.lookup("a").unwrap();
        let _ = mgr.sat_count(f, &[a]);
    }

    #[test]
    fn any_model_satisfies() {
        let (mgr, f, _) = build("(a | b) & !c");
        let model = mgr.any_model(f).unwrap();
        assert!(mgr.eval(f, &model));
        assert!(mgr.any_model(BddRef::FALSE).is_none());
        assert_eq!(mgr.any_model(BddRef::TRUE), Some(Assignment::new()));
    }

    #[test]
    fn models_enumerates_disjoint_cubes_covering_sat_count() {
        let (mgr, f, pool) = build("(a & b) | (!a & c)");
        let vars: Vec<_> = pool.ids().collect();
        let expected = mgr.sat_count(f, &vars);
        // Expand cubes to full assignments over the support and count them.
        let support = mgr.support(f);
        let mut total = 0u128;
        for cube in mgr.models(f) {
            assert!(mgr.eval_cube(f, &cube));
            let free = support.iter().filter(|v| !cube.contains(**v)).count();
            total += 1u128 << free;
        }
        assert_eq!(total, expected);
        assert_eq!(mgr.models(BddRef::FALSE).count(), 0);
        assert_eq!(mgr.models(BddRef::TRUE).count(), 1);
    }

    #[test]
    fn models_of_tautology_over_no_support() {
        let (mgr, f, _) = build("a | !a");
        assert_eq!(f, BddRef::TRUE);
        let cubes: Vec<_> = mgr.models(f).collect();
        assert_eq!(cubes.len(), 1);
        assert!(cubes[0].is_empty());
    }
}
