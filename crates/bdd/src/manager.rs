//! The BDD manager: node store, unique table and boolean operations.

use std::collections::HashMap;

use ipcl_expr::{Assignment, Expr, VarId};

/// Handle to a BDD node owned by a [`BddManager`].
///
/// The two terminals are [`BddRef::FALSE`] and [`BddRef::TRUE`]; every other
/// handle refers to a decision node. Handles are only meaningful for the
/// manager that created them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BddRef(pub(crate) u32);

impl BddRef {
    /// The constant-false terminal.
    pub const FALSE: BddRef = BddRef(0);
    /// The constant-true terminal.
    pub const TRUE: BddRef = BddRef(1);

    /// Whether this handle is one of the two terminals.
    pub fn is_terminal(self) -> bool {
        self.0 < 2
    }

    /// Raw index into the manager's node store (mostly useful for debugging
    /// and DOT export).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One decision node: branch variable (as a level) plus low/high children.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct Node {
    level: u32,
    low: BddRef,
    high: BddRef,
}

/// Binary operations memoised in the apply cache.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Op {
    And,
    Or,
    Xor,
}

/// Size statistics of a manager, reported by [`BddManager::stats`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BddStats {
    /// Total allocated nodes, including the two terminals.
    pub nodes: usize,
    /// Number of distinct variables registered with the manager.
    pub variables: usize,
    /// Entries currently held in the apply cache.
    pub cache_entries: usize,
}

/// A reduced ordered BDD manager.
///
/// Variables are [`VarId`]s from `ipcl-expr`; the manager assigns each
/// variable a *level* (its position in the global ordering) the first time it
/// is seen, or according to an explicit order given via
/// [`BddManager::with_order`].
#[derive(Clone, Debug)]
pub struct BddManager {
    nodes: Vec<Node>,
    unique: HashMap<(u32, BddRef, BddRef), BddRef>,
    apply_cache: HashMap<(Op, BddRef, BddRef), BddRef>,
    not_cache: HashMap<BddRef, BddRef>,
    /// level -> variable
    order: Vec<VarId>,
    /// variable -> level
    level_of: HashMap<VarId, u32>,
}

impl Default for BddManager {
    fn default() -> Self {
        Self::new()
    }
}

impl BddManager {
    /// Creates a manager with an empty variable order; variables are assigned
    /// levels in first-use order.
    pub fn new() -> Self {
        BddManager {
            // Index 0 and 1 are the terminals; their node contents are never
            // inspected, but keeping real entries keeps indexing simple.
            nodes: vec![
                Node {
                    level: u32::MAX,
                    low: BddRef::FALSE,
                    high: BddRef::FALSE,
                },
                Node {
                    level: u32::MAX,
                    low: BddRef::TRUE,
                    high: BddRef::TRUE,
                },
            ],
            unique: HashMap::new(),
            apply_cache: HashMap::new(),
            not_cache: HashMap::new(),
            order: Vec::new(),
            level_of: HashMap::new(),
        }
    }

    /// Creates a manager with an explicit variable order (first = topmost).
    pub fn with_order<I: IntoIterator<Item = VarId>>(order: I) -> Self {
        let mut mgr = Self::new();
        for v in order {
            mgr.level_for(v);
        }
        mgr
    }

    /// The current variable order, topmost level first.
    pub fn order(&self) -> &[VarId] {
        &self.order
    }

    /// Size statistics for benchmarking and regression tests.
    pub fn stats(&self) -> BddStats {
        BddStats {
            nodes: self.nodes.len(),
            variables: self.order.len(),
            cache_entries: self.apply_cache.len() + self.not_cache.len(),
        }
    }

    /// The constant-true function.
    pub fn constant(&self, value: bool) -> BddRef {
        if value {
            BddRef::TRUE
        } else {
            BddRef::FALSE
        }
    }

    fn level_for(&mut self, var: VarId) -> u32 {
        if let Some(&level) = self.level_of.get(&var) {
            return level;
        }
        let level = self.order.len() as u32;
        self.order.push(var);
        self.level_of.insert(var, level);
        level
    }

    /// The variable at `level`, if any.
    pub fn var_at_level(&self, level: u32) -> Option<VarId> {
        self.order.get(level as usize).copied()
    }

    /// The projection function of `var` (a BDD that is true iff `var` is).
    pub fn var(&mut self, var: VarId) -> BddRef {
        let level = self.level_for(var);
        self.mk(level, BddRef::FALSE, BddRef::TRUE)
    }

    /// The negated projection of `var`.
    pub fn not_var(&mut self, var: VarId) -> BddRef {
        let level = self.level_for(var);
        self.mk(level, BddRef::TRUE, BddRef::FALSE)
    }

    fn mk(&mut self, level: u32, low: BddRef, high: BddRef) -> BddRef {
        if low == high {
            return low;
        }
        if let Some(&existing) = self.unique.get(&(level, low, high)) {
            return existing;
        }
        let id = BddRef(self.nodes.len() as u32);
        self.nodes.push(Node { level, low, high });
        self.unique.insert((level, low, high), id);
        id
    }

    fn node(&self, f: BddRef) -> Node {
        self.nodes[f.index()]
    }

    /// Level of the topmost decision variable of `f` (`u32::MAX` for
    /// terminals).
    fn level(&self, f: BddRef) -> u32 {
        if f.is_terminal() {
            u32::MAX
        } else {
            self.node(f).level
        }
    }

    /// Negation.
    pub fn not(&mut self, f: BddRef) -> BddRef {
        match f {
            BddRef::FALSE => BddRef::TRUE,
            BddRef::TRUE => BddRef::FALSE,
            _ => {
                if let Some(&cached) = self.not_cache.get(&f) {
                    return cached;
                }
                let n = self.node(f);
                let low = self.not(n.low);
                let high = self.not(n.high);
                let result = self.mk(n.level, low, high);
                self.not_cache.insert(f, result);
                result
            }
        }
    }

    /// Conjunction.
    pub fn and(&mut self, f: BddRef, g: BddRef) -> BddRef {
        self.apply(Op::And, f, g)
    }

    /// Disjunction.
    pub fn or(&mut self, f: BddRef, g: BddRef) -> BddRef {
        self.apply(Op::Or, f, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: BddRef, g: BddRef) -> BddRef {
        self.apply(Op::Xor, f, g)
    }

    /// Implication `f → g`.
    pub fn implies(&mut self, f: BddRef, g: BddRef) -> BddRef {
        let nf = self.not(f);
        self.or(nf, g)
    }

    /// Bi-implication `f ↔ g`.
    pub fn iff(&mut self, f: BddRef, g: BddRef) -> BddRef {
        let x = self.xor(f, g);
        self.not(x)
    }

    /// If-then-else `ite(f, g, h)`.
    pub fn ite(&mut self, f: BddRef, g: BddRef, h: BddRef) -> BddRef {
        // ite(f,g,h) = (f & g) | (!f & h)
        let fg = self.and(f, g);
        let nf = self.not(f);
        let nfh = self.and(nf, h);
        self.or(fg, nfh)
    }

    fn apply(&mut self, op: Op, f: BddRef, g: BddRef) -> BddRef {
        if let Some(result) = terminal_case(op, f, g) {
            return result;
        }
        // Normalise commutative operand order for better cache hit rates.
        let (f, g) = if f <= g { (f, g) } else { (g, f) };
        if let Some(&cached) = self.apply_cache.get(&(op, f, g)) {
            return cached;
        }
        let (lf, lg) = (self.level(f), self.level(g));
        let level = lf.min(lg);
        let (f_low, f_high) = if lf == level {
            let n = self.node(f);
            (n.low, n.high)
        } else {
            (f, f)
        };
        let (g_low, g_high) = if lg == level {
            let n = self.node(g);
            (n.low, n.high)
        } else {
            (g, g)
        };
        let low = self.apply(op, f_low, g_low);
        let high = self.apply(op, f_high, g_high);
        let result = self.mk(level, low, high);
        self.apply_cache.insert((op, f, g), result);
        result
    }

    /// Restriction `f[var := value]`.
    pub fn restrict(&mut self, f: BddRef, var: VarId, value: bool) -> BddRef {
        let Some(&level) = self.level_of.get(&var) else {
            return f;
        };
        self.restrict_level(f, level, value)
    }

    fn restrict_level(&mut self, f: BddRef, level: u32, value: bool) -> BddRef {
        if f.is_terminal() {
            return f;
        }
        let n = self.node(f);
        if n.level > level {
            return f;
        }
        if n.level == level {
            return if value { n.high } else { n.low };
        }
        let low = self.restrict_level(n.low, level, value);
        let high = self.restrict_level(n.high, level, value);
        self.mk(n.level, low, high)
    }

    /// Functional composition `f[var := g]`.
    pub fn compose(&mut self, f: BddRef, var: VarId, g: BddRef) -> BddRef {
        let high = self.restrict(f, var, true);
        let low = self.restrict(f, var, false);
        self.ite(g, high, low)
    }

    /// Existential quantification over `vars`.
    pub fn exists<I: IntoIterator<Item = VarId>>(&mut self, f: BddRef, vars: I) -> BddRef {
        let mut result = f;
        for var in vars {
            let high = self.restrict(result, var, true);
            let low = self.restrict(result, var, false);
            result = self.or(high, low);
        }
        result
    }

    /// Universal quantification over `vars`.
    pub fn forall<I: IntoIterator<Item = VarId>>(&mut self, f: BddRef, vars: I) -> BddRef {
        let mut result = f;
        for var in vars {
            let high = self.restrict(result, var, true);
            let low = self.restrict(result, var, false);
            result = self.and(high, low);
        }
        result
    }

    /// Builds the BDD of an `ipcl-expr` expression.
    ///
    /// Variables encountered for the first time are appended to the order; to
    /// control ordering, construct the manager via [`BddManager::with_order`]
    /// or pre-register variables with [`BddManager::var`].
    pub fn from_expr(&mut self, expr: &Expr) -> BddRef {
        match expr {
            Expr::Const(b) => self.constant(*b),
            Expr::Var(v) => self.var(*v),
            Expr::Not(e) => {
                let inner = self.from_expr(e);
                self.not(inner)
            }
            Expr::And(ops) => {
                let mut acc = BddRef::TRUE;
                for op in ops {
                    let operand = self.from_expr(op);
                    acc = self.and(acc, operand);
                    if acc == BddRef::FALSE {
                        break;
                    }
                }
                acc
            }
            Expr::Or(ops) => {
                let mut acc = BddRef::FALSE;
                for op in ops {
                    let operand = self.from_expr(op);
                    acc = self.or(acc, operand);
                    if acc == BddRef::TRUE {
                        break;
                    }
                }
                acc
            }
            Expr::Implies(l, r) => {
                let l = self.from_expr(l);
                let r = self.from_expr(r);
                self.implies(l, r)
            }
            Expr::Iff(l, r) => {
                let l = self.from_expr(l);
                let r = self.from_expr(r);
                self.iff(l, r)
            }
            Expr::Xor(l, r) => {
                let l = self.from_expr(l);
                let r = self.from_expr(r);
                self.xor(l, r)
            }
            Expr::Ite(c, t, e) => {
                let c = self.from_expr(c);
                let t = self.from_expr(t);
                let e = self.from_expr(e);
                self.ite(c, t, e)
            }
        }
    }

    /// Evaluates `f` under a (partial) assignment; unassigned variables read
    /// as `false`, matching hardware reset semantics.
    pub fn eval(&self, f: BddRef, env: &Assignment) -> bool {
        let mut cursor = f;
        while !cursor.is_terminal() {
            let n = self.node(cursor);
            let var = self.order[n.level as usize];
            cursor = if env.get_or_false(var) { n.high } else { n.low };
        }
        cursor == BddRef::TRUE
    }

    /// Whether `f` is the constant-true function.
    pub fn is_tautology(&self, f: BddRef) -> bool {
        f == BddRef::TRUE
    }

    /// Whether `f` is the constant-false function.
    pub fn is_contradiction(&self, f: BddRef) -> bool {
        f == BddRef::FALSE
    }

    /// Whether `f → g` is valid.
    pub fn implication_holds(&mut self, f: BddRef, g: BddRef) -> bool {
        let imp = self.implies(f, g);
        self.is_tautology(imp)
    }

    /// Whether `f` and `g` denote the same function.
    pub fn equivalent(&self, f: BddRef, g: BddRef) -> bool {
        // Canonicity of ROBDDs: same function ⇔ same node.
        f == g
    }

    /// The set of variables `f` actually depends on.
    pub fn support(&self, f: BddRef) -> Vec<VarId> {
        let mut levels = std::collections::BTreeSet::new();
        let mut stack = vec![f];
        let mut seen = std::collections::HashSet::new();
        while let Some(node) = stack.pop() {
            if node.is_terminal() || !seen.insert(node) {
                continue;
            }
            let n = self.node(node);
            levels.insert(n.level);
            stack.push(n.low);
            stack.push(n.high);
        }
        levels
            .into_iter()
            .map(|level| self.order[level as usize])
            .collect()
    }

    /// Number of decision nodes reachable from `f` (excluding terminals).
    pub fn size(&self, f: BddRef) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        let mut count = 0;
        while let Some(node) = stack.pop() {
            if node.is_terminal() || !seen.insert(node) {
                continue;
            }
            count += 1;
            let n = self.node(node);
            stack.push(n.low);
            stack.push(n.high);
        }
        count
    }

    /// Internal accessor used by the analysis and DOT modules.
    pub(crate) fn children(&self, f: BddRef) -> Option<(u32, BddRef, BddRef)> {
        if f.is_terminal() {
            None
        } else {
            let n = self.node(f);
            Some((n.level, n.low, n.high))
        }
    }

    /// Clears the operation caches (the unique table and nodes are kept).
    pub fn clear_caches(&mut self) {
        self.apply_cache.clear();
        self.not_cache.clear();
    }
}

fn terminal_case(op: Op, f: BddRef, g: BddRef) -> Option<BddRef> {
    match op {
        Op::And => {
            if f == BddRef::FALSE || g == BddRef::FALSE {
                Some(BddRef::FALSE)
            } else if f == BddRef::TRUE {
                Some(g)
            } else if g == BddRef::TRUE || f == g {
                Some(f)
            } else {
                None
            }
        }
        Op::Or => {
            if f == BddRef::TRUE || g == BddRef::TRUE {
                Some(BddRef::TRUE)
            } else if f == BddRef::FALSE {
                Some(g)
            } else if g == BddRef::FALSE || f == g {
                Some(f)
            } else {
                None
            }
        }
        Op::Xor => {
            if f == g {
                Some(BddRef::FALSE)
            } else if f == BddRef::FALSE {
                Some(g)
            } else if g == BddRef::FALSE {
                Some(f)
            } else if f == BddRef::TRUE && g == BddRef::TRUE {
                Some(BddRef::FALSE)
            } else {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcl_expr::{parse_expr, VarPool};

    fn mgr_abc() -> (BddManager, VarId, VarId, VarId) {
        let mut pool = VarPool::new();
        let a = pool.var("a");
        let b = pool.var("b");
        let c = pool.var("c");
        (BddManager::with_order([a, b, c]), a, b, c)
    }

    #[test]
    fn terminals() {
        let mgr = BddManager::new();
        assert!(mgr.is_tautology(BddRef::TRUE));
        assert!(mgr.is_contradiction(BddRef::FALSE));
        assert!(BddRef::TRUE.is_terminal());
        assert_eq!(mgr.constant(true), BddRef::TRUE);
        assert_eq!(mgr.constant(false), BddRef::FALSE);
    }

    #[test]
    fn hash_consing_shares_nodes() {
        let (mut mgr, a, _, _) = mgr_abc();
        let f = mgr.var(a);
        let g = mgr.var(a);
        assert_eq!(f, g);
        assert_eq!(mgr.size(f), 1);
    }

    #[test]
    fn basic_laws() {
        let (mut mgr, a, b, _) = mgr_abc();
        let va = mgr.var(a);
        let vb = mgr.var(b);
        let na = mgr.not(va);

        let contradiction = mgr.and(va, na);
        assert!(mgr.is_contradiction(contradiction));
        let excluded_middle = mgr.or(va, na);
        assert!(mgr.is_tautology(excluded_middle));

        let ab = mgr.and(va, vb);
        let ba = mgr.and(vb, va);
        assert!(mgr.equivalent(ab, ba));

        let double_neg = mgr.not(na);
        assert_eq!(double_neg, va);

        // De Morgan
        let nab = mgr.not(ab);
        let nb = mgr.not(vb);
        let or_n = mgr.or(na, nb);
        assert!(mgr.equivalent(nab, or_n));
    }

    #[test]
    fn xor_iff_ite() {
        let (mut mgr, a, b, c) = mgr_abc();
        let (va, vb, vc) = (mgr.var(a), mgr.var(b), mgr.var(c));
        let x = mgr.xor(va, vb);
        let i = mgr.iff(va, vb);
        let ni = mgr.not(i);
        assert!(mgr.equivalent(x, ni));
        let ite = mgr.ite(va, vb, vc);
        // Check by evaluation on all 8 assignments.
        for mask in 0..8u32 {
            let env = Assignment::from_pairs([
                (a, mask & 1 != 0),
                (b, mask & 2 != 0),
                (c, mask & 4 != 0),
            ]);
            let expected = if mask & 1 != 0 {
                mask & 2 != 0
            } else {
                mask & 4 != 0
            };
            assert_eq!(mgr.eval(ite, &env), expected);
        }
    }

    #[test]
    fn restrict_and_compose() {
        let (mut mgr, a, b, c) = mgr_abc();
        let (va, vb, vc) = (mgr.var(a), mgr.var(b), mgr.var(c));
        let ab = mgr.and(va, vb);
        let restricted = mgr.restrict(ab, a, true);
        assert!(mgr.equivalent(restricted, vb));
        let restricted_false = mgr.restrict(ab, a, false);
        assert!(mgr.is_contradiction(restricted_false));
        // Compose b := c in (a & b) gives (a & c).
        let composed = mgr.compose(ab, b, vc);
        let ac = mgr.and(va, vc);
        assert!(mgr.equivalent(composed, ac));
        // Restricting an unknown variable is a no-op.
        let mut pool = VarPool::new();
        pool.var("a");
        pool.var("b");
        pool.var("c");
        let unknown = pool.var("zzz");
        assert_eq!(mgr.restrict(ab, unknown, true), ab);
    }

    #[test]
    fn quantification() {
        let (mut mgr, a, b, _) = mgr_abc();
        let (va, vb) = (mgr.var(a), mgr.var(b));
        let ab = mgr.and(va, vb);
        let exists_a = mgr.exists(ab, [a]);
        assert!(mgr.equivalent(exists_a, vb));
        let forall_a = mgr.forall(ab, [a]);
        assert!(mgr.is_contradiction(forall_a));
        let aob = mgr.or(va, vb);
        let forall_both = mgr.forall(aob, [a, b]);
        assert!(mgr.is_contradiction(forall_both));
        let exists_both = mgr.exists(aob, [a, b]);
        assert!(mgr.is_tautology(exists_both));
    }

    #[test]
    fn from_expr_agrees_with_eval() {
        let mut pool = VarPool::new();
        let texts = [
            "a & b | !c",
            "(a -> b) & (b -> c) -> (a -> c)",
            "a <-> b ^ c",
            "if a then b else c",
            "a & !a",
        ];
        for text in texts {
            let e = parse_expr(text, &mut pool).unwrap();
            let mut mgr = BddManager::new();
            let f = mgr.from_expr(&e);
            let vars: Vec<VarId> = e.vars().into_iter().collect();
            for mask in 0u32..(1 << vars.len()) {
                let env: Assignment = vars
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (v, mask & (1 << i) != 0))
                    .collect();
                let expected = e.eval_with(|v| {
                    vars.iter()
                        .position(|&x| x == v)
                        .map(|i| mask & (1 << i) != 0)
                        .unwrap_or(false)
                });
                assert_eq!(mgr.eval(f, &env), expected, "{text} mask {mask:b}");
            }
        }
    }

    #[test]
    fn implication_and_equivalence_checks() {
        let mut pool = VarPool::new();
        let stronger = parse_expr("a & b", &mut pool).unwrap();
        let weaker = parse_expr("a | b", &mut pool).unwrap();
        let mut mgr = BddManager::new();
        let s = mgr.from_expr(&stronger);
        let w = mgr.from_expr(&weaker);
        assert!(mgr.implication_holds(s, w));
        assert!(!mgr.implication_holds(w, s));
        assert!(!mgr.equivalent(s, w));
    }

    #[test]
    fn support_and_size() {
        let (mut mgr, a, b, c) = mgr_abc();
        let (va, vb) = (mgr.var(a), mgr.var(b));
        let f = mgr.and(va, vb);
        assert_eq!(mgr.support(f), vec![a, b]);
        assert_eq!(mgr.size(f), 2);
        assert_eq!(mgr.support(BddRef::TRUE), vec![]);
        assert_eq!(mgr.size(BddRef::FALSE), 0);
        // c is registered but not in the support of f.
        assert!(!mgr.support(f).contains(&c));
    }

    #[test]
    fn stats_and_cache_clear() {
        let (mut mgr, a, b, _) = mgr_abc();
        let (va, vb) = (mgr.var(a), mgr.var(b));
        let _ = mgr.and(va, vb);
        let stats = mgr.stats();
        assert!(stats.nodes >= 4);
        assert_eq!(stats.variables, 3);
        mgr.clear_caches();
        assert_eq!(mgr.stats().cache_entries, 0);
    }

    #[test]
    fn reduction_eliminates_redundant_tests() {
        let (mut mgr, a, b, _) = mgr_abc();
        let va = mgr.var(a);
        let vb = mgr.var(b);
        // (a & b) | (a & !b) == a ; the BDD must collapse to the single node a.
        let nb = mgr.not(vb);
        let left = mgr.and(va, vb);
        let right = mgr.and(va, nb);
        let f = mgr.or(left, right);
        assert_eq!(f, va);
    }

    #[test]
    fn with_order_respects_given_order() {
        let mut pool = VarPool::new();
        let x = pool.var("x");
        let y = pool.var("y");
        let mgr = BddManager::with_order([y, x]);
        assert_eq!(mgr.order(), &[y, x]);
        assert_eq!(mgr.var_at_level(0), Some(y));
        assert_eq!(mgr.var_at_level(1), Some(x));
        assert_eq!(mgr.var_at_level(2), None);
    }
}
