//! Graphviz (DOT) export of BDDs, useful for documentation and debugging of
//! specification structure.

use std::fmt::Write as _;

use ipcl_expr::VarPool;

use crate::manager::{BddManager, BddRef};

impl BddManager {
    /// Renders the BDD rooted at `f` as a Graphviz `digraph`.
    ///
    /// Solid edges are the high (then) branches, dashed edges the low (else)
    /// branches. Variable names are taken from `pool`.
    ///
    /// # Example
    ///
    /// ```
    /// use ipcl_bdd::BddManager;
    /// use ipcl_expr::{parse_expr, VarPool};
    ///
    /// let mut pool = VarPool::new();
    /// let e = parse_expr("a & b", &mut pool)?;
    /// let mut mgr = BddManager::new();
    /// let f = mgr.from_expr(&e);
    /// let dot = mgr.to_dot(f, &pool);
    /// assert!(dot.contains("digraph bdd"));
    /// # Ok::<(), ipcl_expr::ParseError>(())
    /// ```
    pub fn to_dot(&self, f: BddRef, pool: &VarPool) -> String {
        let mut out = String::from("digraph bdd {\n  rankdir=TB;\n");
        out.push_str("  node_true [label=\"1\", shape=box];\n");
        out.push_str("  node_false [label=\"0\", shape=box];\n");

        let mut stack = vec![f];
        let mut seen = std::collections::HashSet::new();
        while let Some(node) = stack.pop() {
            if node.is_terminal() || !seen.insert(node) {
                continue;
            }
            let (level, low, high) = self.children(node).expect("non-terminal");
            let name = self
                .var_at_level(level)
                .map(|v| pool.name_or_fallback(v))
                .unwrap_or_else(|| format!("level{level}"));
            let _ = writeln!(
                out,
                "  node{} [label=\"{}\", shape=circle];",
                node.index(),
                name
            );
            let _ = writeln!(
                out,
                "  node{} -> {} [style=dashed];",
                node.index(),
                node_name(low)
            );
            let _ = writeln!(out, "  node{} -> {};", node.index(), node_name(high));
            stack.push(low);
            stack.push(high);
        }
        if f.is_terminal() {
            let _ = writeln!(out, "  root -> {};", node_name(f));
        }
        out.push_str("}\n");
        out
    }
}

fn node_name(node: BddRef) -> String {
    match node {
        BddRef::FALSE => "node_false".to_owned(),
        BddRef::TRUE => "node_true".to_owned(),
        other => format!("node{}", other.index()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcl_expr::{parse_expr, VarPool};

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let mut pool = VarPool::new();
        let e = parse_expr("a & b | c", &mut pool).unwrap();
        let mut mgr = BddManager::new();
        let f = mgr.from_expr(&e);
        let dot = mgr.to_dot(f, &pool);
        assert!(dot.starts_with("digraph bdd"));
        assert!(dot.contains("label=\"a\""));
        assert!(dot.contains("label=\"b\""));
        assert!(dot.contains("label=\"c\""));
        assert!(dot.contains("style=dashed"));
        assert!(dot.ends_with("}\n"));
        // One line per reachable decision node.
        let node_lines = dot.lines().filter(|l| l.contains("shape=circle")).count();
        assert_eq!(node_lines, mgr.size(f));
    }

    #[test]
    fn dot_of_terminal() {
        let pool = VarPool::new();
        let mgr = BddManager::new();
        let dot = mgr.to_dot(BddRef::TRUE, &pool);
        assert!(dot.contains("root -> node_true"));
    }
}
