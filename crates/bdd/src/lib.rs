//! A reduced ordered binary decision diagram (ROBDD) package.
//!
//! `ipcl-bdd` is the exhaustive-reasoning substrate of the `ipcl` workspace:
//! the property checker represents interlock specifications as BDDs to decide
//! validity, implication and equivalence, and to enumerate counterexample
//! assignments (unnecessary-stall witnesses).
//!
//! The package is self-contained (no external BDD crate is used): a
//! [`BddManager`] owns the node store, the unique table (hash consing) and the
//! operation caches; functions are referenced by lightweight [`BddRef`]
//! handles.
//!
//! # Example
//!
//! ```
//! use ipcl_bdd::BddManager;
//! use ipcl_expr::{parse_expr, VarPool};
//!
//! let mut pool = VarPool::new();
//! let spec = parse_expr("(a -> b) & a -> b", &mut pool)?;
//! let mut mgr = BddManager::new();
//! let f = mgr.from_expr(&spec);
//! assert!(mgr.is_tautology(f));
//! # Ok::<(), ipcl_expr::ParseError>(())
//! ```

pub mod analysis;
pub mod dot;
pub mod manager;
pub mod order;

pub use analysis::ModelIter;
pub use manager::{BddManager, BddRef, BddStats};
pub use order::{order_from_exprs, OrderHeuristic};

#[cfg(test)]
mod tests {
    use super::*;
    use ipcl_expr::{parse_expr, VarPool};

    #[test]
    fn crate_level_example() {
        let mut pool = VarPool::new();
        let e = parse_expr("x & !x", &mut pool).unwrap();
        let mut mgr = BddManager::new();
        let f = mgr.from_expr(&e);
        assert!(mgr.is_contradiction(f));
    }
}
