//! Static variable-ordering heuristics.
//!
//! BDD size is highly sensitive to variable order. For interlock
//! specifications a good order groups the signals of one pipeline stage
//! together and follows the pipeline from completion stage backwards —
//! exactly the order in which a depth-first traversal of the specification
//! encounters them. [`order_from_exprs`] implements that traversal order plus
//! a frequency-weighted variant.

use std::collections::BTreeMap;

use ipcl_expr::{Expr, VarId};

/// Heuristic used by [`order_from_exprs`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OrderHeuristic {
    /// Variables in depth-first first-occurrence order across the
    /// expressions. Groups related signals, the recommended default.
    #[default]
    FirstOccurrence,
    /// Most frequently occurring variables first (ties broken by first
    /// occurrence). Tends to push heavily-shared signals towards the root.
    FrequencyFirst,
}

/// Computes a variable order for a set of specification expressions.
///
/// # Example
///
/// ```
/// use ipcl_bdd::{order_from_exprs, OrderHeuristic, BddManager};
/// use ipcl_expr::{parse_expr, VarPool};
///
/// let mut pool = VarPool::new();
/// let e = parse_expr("(a & b) | (a & c)", &mut pool)?;
/// let order = order_from_exprs([&e], OrderHeuristic::FrequencyFirst);
/// assert_eq!(order[0], pool.lookup("a").unwrap());
/// let mut mgr = BddManager::with_order(order);
/// let f = mgr.from_expr(&e);
/// assert!(mgr.size(f) <= 3);
/// # Ok::<(), ipcl_expr::ParseError>(())
/// ```
pub fn order_from_exprs<'a, I>(exprs: I, heuristic: OrderHeuristic) -> Vec<VarId>
where
    I: IntoIterator<Item = &'a Expr>,
{
    let mut first_seen: Vec<VarId> = Vec::new();
    let mut counts: BTreeMap<VarId, usize> = BTreeMap::new();
    for expr in exprs {
        collect(expr, &mut first_seen, &mut counts);
    }
    match heuristic {
        OrderHeuristic::FirstOccurrence => first_seen,
        OrderHeuristic::FrequencyFirst => {
            let mut order = first_seen.clone();
            let rank: BTreeMap<VarId, usize> = first_seen
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, i))
                .collect();
            order.sort_by_key(|v| (std::cmp::Reverse(counts[v]), rank[v]));
            order
        }
    }
}

fn collect(expr: &Expr, first_seen: &mut Vec<VarId>, counts: &mut BTreeMap<VarId, usize>) {
    match expr {
        Expr::Const(_) => {}
        Expr::Var(v) => {
            if !counts.contains_key(v) {
                first_seen.push(*v);
            }
            *counts.entry(*v).or_insert(0) += 1;
        }
        Expr::Not(e) => collect(e, first_seen, counts),
        Expr::And(ops) | Expr::Or(ops) => {
            for op in ops {
                collect(op, first_seen, counts);
            }
        }
        Expr::Implies(l, r) | Expr::Iff(l, r) | Expr::Xor(l, r) => {
            collect(l, first_seen, counts);
            collect(r, first_seen, counts);
        }
        Expr::Ite(c, t, e) => {
            collect(c, first_seen, counts);
            collect(t, first_seen, counts);
            collect(e, first_seen, counts);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::BddManager;
    use ipcl_expr::{parse_expr, VarPool};

    #[test]
    fn first_occurrence_order() {
        let mut pool = VarPool::new();
        let e = parse_expr("b & a | c & a", &mut pool).unwrap();
        let order = order_from_exprs([&e], OrderHeuristic::FirstOccurrence);
        let names: Vec<&str> = order.iter().map(|&v| pool.name(v).unwrap()).collect();
        assert_eq!(names, vec!["b", "a", "c"]);
    }

    #[test]
    fn frequency_order_puts_shared_vars_first() {
        let mut pool = VarPool::new();
        let e = parse_expr("(b & a) | (c & a) | (d & a)", &mut pool).unwrap();
        let order = order_from_exprs([&e], OrderHeuristic::FrequencyFirst);
        assert_eq!(pool.name(order[0]), Some("a"));
    }

    #[test]
    fn order_affects_bdd_size_for_interleaved_functions() {
        // The classic (a1&b1)|(a2&b2)|(a3&b3): grouped order is linear,
        // interleaved order is exponential.
        let mut pool = VarPool::new();
        let e = parse_expr("a1 & b1 | a2 & b2 | a3 & b3", &mut pool).unwrap();
        let good = order_from_exprs([&e], OrderHeuristic::FirstOccurrence);
        let mut mgr_good = BddManager::with_order(good);
        let f_good = mgr_good.from_expr(&e);

        let bad_order = ["a1", "a2", "a3", "b1", "b2", "b3"]
            .iter()
            .map(|n| pool.lookup(n).unwrap());
        let mut mgr_bad = BddManager::with_order(bad_order);
        let f_bad = mgr_bad.from_expr(&e);

        assert!(mgr_good.size(f_good) < mgr_bad.size(f_bad));
    }

    #[test]
    fn order_over_multiple_exprs() {
        let mut pool = VarPool::new();
        let e1 = parse_expr("x & y", &mut pool).unwrap();
        let e2 = parse_expr("y & z", &mut pool).unwrap();
        let order = order_from_exprs([&e1, &e2], OrderHeuristic::FirstOccurrence);
        assert_eq!(order.len(), 3);
    }
}
