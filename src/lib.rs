//! `ipcl` — verification of interlocked pipeline control logic.
//!
//! This is the umbrella crate of the `ipcl` workspace, a reproduction of
//! *“Achieving Maximum Performance: A Method for the Verification of
//! Interlocked Pipeline Control Logic”* (Eder & Barrett, DAC 2002). It
//! re-exports every sub-crate under one namespace so applications can depend
//! on a single crate:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`expr`] | `ipcl-expr` | boolean expressions, parser, CNF, polarity |
//! | [`bdd`] | `ipcl-bdd` | ROBDD package |
//! | [`sat`] | `ipcl-sat` | CDCL SAT solver |
//! | [`rtl`] | `ipcl-rtl` | netlists, simulation, Verilog emission |
//! | [`bitsim`] | `ipcl-bitsim` | compiled bit-parallel simulation: 64 scenarios per levelized instruction pass |
//! | [`core`] | `ipcl-core` | interlock specifications and the fixed-point derivation |
//! | [`pipesim`] | `ipcl-pipesim` | cycle-accurate pipeline simulator and workloads |
//! | [`assertgen`] | `ipcl-assertgen` | SVA/PSL assertion generation and runtime monitors |
//! | [`synth`] | `ipcl-synth` | interlock RTL synthesis from the specification |
//! | [`checker`] | `ipcl-checker` | BDD/SAT property checking and reset checks |
//! | [`bmc`] | `ipcl-bmc` | bounded model checking and k-induction over netlists |
//! | [`pdr`] | `ipcl-pdr` | IC3/PDR with certified invariants and the BMC/PDR portfolio |
//! | [`trace`] | `ipcl-trace` | structured tracing, metrics, and profiling of the solve stack |
//! | [`tracetool`] | `ipcl-tracetool` | trace export (Perfetto/flamegraph), profile diffing, perf-regression gate |
//! | [`serve`] | `ipcl-serve` | verification-as-a-service: job-queue server with a revalidating structural-hash proof cache |
//!
//! # Quick start
//!
//! ```
//! use ipcl::core::example::ExampleArch;
//! use ipcl::core::fixpoint::derive_symbolic;
//! use ipcl::checker::{check_derived_implementation, Engine};
//!
//! // Figure 2: the functional specification of the example architecture.
//! let spec = ExampleArch::new().functional_spec();
//! // Section 3: derive the maximum-performance assignment by fixed point.
//! let derivation = derive_symbolic(&spec);
//! assert_eq!(derivation.moe.len(), 6);
//! // The derived interlock provably satisfies the combined specification.
//! assert!(check_derived_implementation(&spec, Engine::Bdd).holds());
//! ```
//!
//! See the `examples/` directory for end-to-end scenarios (performance-bug
//! hunting in simulation, exhaustive property checking, interlock synthesis,
//! and the FirePath-like case study) and `EXPERIMENTS.md` for the experiment
//! harness reproducing the paper's figures and claims.

pub use ipcl_assertgen as assertgen;
pub use ipcl_bdd as bdd;
pub use ipcl_bitsim as bitsim;
pub use ipcl_bmc as bmc;
pub use ipcl_checker as checker;
pub use ipcl_core as core;
pub use ipcl_expr as expr;
pub use ipcl_pdr as pdr;
pub use ipcl_pipesim as pipesim;
pub use ipcl_rtl as rtl;
pub use ipcl_sat as sat;
pub use ipcl_serve as serve;
pub use ipcl_synth as synth;
pub use ipcl_trace as trace;
pub use ipcl_tracetool as tracetool;
