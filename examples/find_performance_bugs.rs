//! Hunting performance bugs (unnecessary stalls) in simulation, the way the
//! FirePath testbench used the derived assertions — and confirming the same
//! bugs exhaustively with the property checker.
//!
//! Run with `cargo run --example find_performance_bugs`.

use ipcl::assertgen::{AssertionKind, SpecMonitor};
use ipcl::checker::{check_moe_expressions, Engine, SpecDirection};
use ipcl::core::fixpoint::derive_symbolic;
use ipcl::core::model::StageRef;
use ipcl::core::ArchSpec;
use ipcl::expr::Expr;
use ipcl::pipesim::{
    ConservativeInterlock, ConservativeVariant, Machine, MaximalInterlock, WorkloadConfig,
};

fn main() {
    let arch = ArchSpec::paper_example();
    let program = WorkloadConfig::default()
        .with_packets(2_000)
        .with_dependence_bias(0.6)
        .generate(2002);

    println!("=== Simulation with performance assertions attached ===");
    println!(
        "{:<28} {:>8} {:>8} {:>12} {:>10} {:>10}",
        "interlock", "cycles", "ipc", "unnecessary", "hazards", "asserts"
    );
    // The maximal (derived) interlock and each injected performance bug.
    let mut policies: Vec<Box<dyn ipcl::pipesim::InterlockPolicy>> =
        vec![Box::new(MaximalInterlock)];
    for variant in ConservativeVariant::ALL {
        policies.push(Box::new(ConservativeInterlock::new(variant)));
    }
    for policy in policies {
        let name = policy.name();
        let mut machine = Machine::new(&arch, policy).expect("example architecture is valid");
        let spec = machine.spec().clone();
        let mut monitor = SpecMonitor::new(&spec, AssertionKind::Performance);
        let stats = machine.run_program_with_observer(&program, 200_000, |env, moe| {
            monitor.check_cycle(env, moe);
        });
        let assertion_hits = monitor
            .report()
            .count_of(ipcl::assertgen::ViolationKind::UnnecessaryStall);
        println!(
            "{:<28} {:>8} {:>8.3} {:>12} {:>10} {:>10}",
            name,
            stats.cycles,
            stats.ipc(),
            stats.unnecessary_stalls,
            stats.hazards.total(),
            assertion_hits
        );
        // The per-stage performance assertion can under-report for stalls
        // that "justify each other" through the lock-step coupling (the
        // cyclic-control caveat of Section 3.2); comparison against the
        // derived maximal interlock (the `unnecessary` column) is exact.
    }

    println!("\n=== Exhaustive confirmation with the property checker ===");
    // Inject the same class of bug symbolically: an interlock derived from a
    // specification with a spurious extra stall rule.
    let spec = arch.functional_spec().expect("valid architecture");
    let wait = spec.pool().lookup("op_is_wait").expect("wait signal");
    let buggy_spec = spec
        .augmented(&StageRef::new("long", 3), "spurious-wait", Expr::var(wait))
        .expect("long.3 exists");
    let buggy_interlock = derive_symbolic(&buggy_spec).moe;
    let report = check_moe_expressions(&spec, &buggy_interlock, Engine::Bdd);
    println!(
        "functional direction holds : {}",
        report.holds_direction(SpecDirection::Functional)
    );
    println!(
        "performance direction holds: {}",
        report.holds_direction(SpecDirection::Performance)
    );
    for (stage, witness) in report.performance_violations() {
        println!(
            "  unnecessary stall at {stage} witnessed by {}",
            witness.display_with(spec.pool())
        );
    }
}
