//! The paper's "further work": synthesising the interlock control logic from
//! its specification, emitting Verilog, and proving the result equivalent to
//! the combined specification — including catching a wrong reset value.
//!
//! Run with `cargo run --example synthesize_interlock`.

use ipcl::checker::{check_netlist, check_reset_values, random_falsification, Engine};
use ipcl::core::example::ExampleArch;
use ipcl::synth::{synthesize_interlock, synthesize_interlock_with, SynthesisOptions};

fn main() {
    let spec = ExampleArch::new().functional_spec();

    // Combinational synthesis straight from the derived closed forms.
    let synthesized = synthesize_interlock(&spec);
    println!("=== Synthesised interlock (combinational) ===");
    println!(
        "netlist: {} signals, {} moe outputs, {} environment inputs",
        synthesized.netlist().len(),
        synthesized.moe_outputs().len(),
        synthesized.inputs().len()
    );
    let report =
        check_netlist(&spec, synthesized.netlist(), Engine::Bdd).expect("all moe outputs present");
    println!(
        "equivalent to the combined specification: {}",
        report.holds()
    );

    println!("\n=== Generated Verilog (excerpt) ===");
    for line in synthesized.to_verilog().lines().take(25) {
        println!("{line}");
    }
    println!("...");

    // Registered variant with an injected initialisation bug — the class of
    // defect the paper reports finding on FirePath.
    let buggy = synthesize_interlock_with(
        &spec,
        SynthesisOptions {
            registered_outputs: true,
            reset_value: false,
            ..Default::default()
        },
    );
    println!("\n=== Reset-value check of a registered implementation ===");
    let reset = check_reset_values(&spec, buggy.netlist());
    println!(
        "registered moe outputs examined: {}, wrong reset values: {}",
        reset.examined,
        reset.mismatches.len()
    );
    for (signal, expected, actual) in &reset.mismatches {
        println!("  {signal}: resets to {actual} but the empty pipeline requires {expected}");
    }

    let dynamic = random_falsification(&spec, buggy.netlist(), 100, 7).expect("netlist elaborates");
    println!(
        "random falsification found {} assertion violations in 100 cycles (first at cycle {})",
        dynamic.len(),
        dynamic.first().map(|v| v.cycle).unwrap_or_default()
    );
}
