//! The FirePath-like case study: applying the method to a two-sided LIW
//! machine with six execution pipes, shunt stages, two completion buses and a
//! 64-entry scoreboard — the synthetic stand-in for the processor verified in
//! the paper's Results section.
//!
//! Run with `cargo run --example firepath_case_study`.

use ipcl::checker::{check_derived_implementation, Engine};
use ipcl::core::fixpoint::derive_symbolic;
use ipcl::core::properties::check_preconditions;
use ipcl::core::ArchSpec;
use ipcl::pipesim::{Machine, MaximalInterlock, WorkloadConfig};

fn main() {
    let arch = ArchSpec::firepath_like();
    println!("=== FirePath-like architecture ===");
    println!(
        "{} pipes, {} stages total, {} completion buses, {} scoreboard entries",
        arch.pipes.len(),
        arch.total_stages(),
        arch.completion_buses.len(),
        arch.scoreboard_registers
    );

    let spec = arch.functional_spec().expect("architecture is well-formed");
    println!(
        "functional specification: {} stages, {} environment signals, {} stall rules",
        spec.stages().len(),
        spec.env_vars().len(),
        spec.stages().iter().map(|s| s.rules.len()).sum::<usize>()
    );

    let preconditions = check_preconditions(&spec);
    println!(
        "Section 3.1 preconditions hold: {} (lock-step cycles: {})",
        preconditions.all_hold(),
        preconditions.has_cycles
    );

    let derivation = derive_symbolic(&spec);
    println!(
        "fixed-point derivation converged after {} iterations",
        derivation.iterations
    );

    let verdict = check_derived_implementation(&spec, Engine::Bdd);
    println!(
        "derived interlock satisfies the combined specification: {}",
        verdict.holds()
    );

    println!("\n=== Simulation at three issue-pressure levels ===");
    println!(
        "{:>12} {:>9} {:>9} {:>8} {:>12}",
        "utilisation", "cycles", "ops", "ipc", "stall cycles"
    );
    for utilisation in [0.3, 0.6, 0.9] {
        let program = WorkloadConfig::for_arch(&arch, utilisation)
            .with_packets(1_000)
            .generate(42);
        let mut machine =
            Machine::new(&arch, Box::new(MaximalInterlock)).expect("architecture is valid");
        let stats = machine.run_program(&program, 200_000);
        println!(
            "{:>12.1} {:>9} {:>9} {:>8.3} {:>12}",
            utilisation,
            stats.cycles,
            stats.ops_completed,
            stats.ipc(),
            stats.total_stall_cycles()
        );
        assert_eq!(stats.hazards.total(), 0);
        assert_eq!(stats.unnecessary_stalls, 0);
    }
}
