//! Quick start: from a functional specification to the maximum-performance
//! specification, assertions and a proof — the paper's whole flow on the
//! example architecture of Figure 1.
//!
//! Run with `cargo run --example quickstart`.

use ipcl::assertgen::{sva::SvaGenerator, AssertionKind};
use ipcl::checker::{check_derived_implementation, Engine};
use ipcl::core::example::ExampleArch;
use ipcl::core::fixpoint::derive_symbolic;
use ipcl::core::properties::check_preconditions;

fn main() {
    // 1. The functional specification of Figure 2: which conditions make a
    //    pipeline stall *necessary*.
    let arch = ExampleArch::new();
    let spec = arch.functional_spec();
    println!("=== Functional specification (Figure 2) ===");
    print!("{}", spec.to_text());

    // 2. The preconditions of Section 3.1: monotonicity, P1, P2.
    let report = check_preconditions(&spec);
    println!("\n=== Section 3.1 preconditions ===");
    println!("monotone stall conditions : {}", report.monotone);
    println!(
        "P1 (all-stalled satisfies): {}",
        report.p1_all_stalled_satisfies
    );
    println!(
        "P2 (disjunction closure)  : {} ({} pairs checked)",
        report.p2_disjunction_closed, report.p2_samples_checked
    );
    println!("lock-step cycles present  : {}", report.has_cycles);

    // 3. The performance specification of Figure 3 (flip every -> into the
    //    other direction) and the fixed-point derivation of the most liberal
    //    moe assignment.
    println!("\n=== Performance specification (Figure 3) ===");
    print!("{}", spec.performance_text());
    let derivation = derive_symbolic(&spec);
    println!(
        "\nderived closed forms for {} stages in {} fixed-point iterations",
        derivation.moe.len(),
        derivation.iterations
    );
    for (var, expr) in &derivation.moe {
        println!(
            "  {:<14} = {}",
            spec.pool().name_or_fallback(*var),
            expr.display(spec.pool())
        );
    }

    // 4. Testbench assertions (the form the FirePath project deployed).
    println!("\n=== Generated SVA performance assertions ===");
    print!(
        "{}",
        SvaGenerator::new(&spec).render_properties(AssertionKind::Performance)
    );

    // 5. Exhaustive property checking: the derived interlock satisfies the
    //    combined specification.
    let verdict = check_derived_implementation(&spec, Engine::Bdd);
    println!("\n=== Property check of the derived interlock ===");
    println!(
        "combined specification holds for every stage: {}",
        verdict.holds()
    );
}
